//! # tqsim-engine
//!
//! Pooled, work-stealing **parallel tree-execution engine** for TQSim, with
//! a batched job API.
//!
//! The paper's computational-reuse insight turns noisy Monte-Carlo
//! simulation into a tree walk; this crate makes that walk run as fast as
//! the hardware allows:
//!
//! - [`WorkerPool`] — a fixed set of worker threads with per-worker LIFO
//!   deques, FIFO stealing, and a per-worker [`StatePool`] so steady-state
//!   execution performs zero heap allocations;
//! - the tree executor (internal, see `exec`) — every tree node is a
//!   dataflow task with a path-derived RNG stream, so output `Counts` are
//!   **bit-identical at every parallelism level** for a fixed seed;
//! - [`Engine`] / [`JobSpec`] / [`Batch`] — submit many
//!   `(circuit, noise, shots, strategy)` jobs at once; identical partition
//!   plans are computed once and shared (cross-*job* reuse, one step beyond
//!   the paper's cross-shot reuse), with [`PlanStats`] reporting the
//!   dedup win.
//!
//! ```
//! use tqsim_engine::{Engine, EngineConfig, JobSpec};
//! use tqsim_circuit::generators;
//!
//! let circuit = generators::qft(6);
//! let engine = Engine::new(EngineConfig::default().parallelism(2));
//! // Three jobs, two of which share one partition plan.
//! let batch = engine.submit(vec![
//!     JobSpec::new(&circuit).shots(64).seed(1),
//!     JobSpec::new(&circuit).shots(64).seed(2),
//!     JobSpec::new(&circuit).shots(256).seed(3),
//! ]);
//! let result = batch.run()?;
//! assert_eq!(result.jobs.len(), 3);
//! assert_eq!(result.plans.planned, 2);
//! assert_eq!(result.plans.reused, 1);
//! # Ok::<(), tqsim::PlanError>(())
//! ```
//!
//! To parallelise a [`Tqsim`] builder description, set
//! [`Tqsim::parallelism`] and hand it to the engine:
//!
//! ```
//! use tqsim::Tqsim;
//! use tqsim_engine::RunParallel;
//! use tqsim_circuit::generators;
//!
//! let circuit = generators::qft(6);
//! let sim = Tqsim::new(&circuit).shots(128).seed(9).parallelism(2);
//! let result = sim.run_parallel()?;
//! assert!(result.counts.total() >= 128);
//! # Ok::<(), tqsim::PlanError>(())
//! ```
//!
//! [`StatePool`]: tqsim_statevec::StatePool

#![warn(missing_docs)]

mod exec;
pub mod pool;

pub use pool::{Task, WorkerCtx, WorkerPool};

use std::sync::Arc;
use tqsim::{Partition, PlanError, RunResult, Strategy, Tqsim};
use tqsim_circuit::Circuit;
use tqsim_noise::NoiseModel;
use tqsim_statevec::{CompiledCircuit, PoolStats};

/// Engine construction options.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    parallelism: usize,
}

impl Default for EngineConfig {
    /// One worker per available hardware thread.
    fn default() -> Self {
        EngineConfig {
            parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

impl EngineConfig {
    /// Same as [`EngineConfig::default`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn parallelism(mut self, n: usize) -> Self {
        assert!(n >= 1, "parallelism must be at least 1");
        self.parallelism = n;
        self
    }
}

/// One simulation request: a circuit with noise, shot budget, partition
/// strategy and seed. Defaults mirror [`Tqsim::new`]: Sycamore noise,
/// 1000 shots, DCP, seed 0, one sample per leaf.
#[derive(Clone, Debug)]
pub struct JobSpec<'c> {
    circuit: &'c Circuit,
    noise: NoiseModel,
    shots: u64,
    strategy: Strategy,
    seed: u64,
    leaf_samples: u32,
    fusion: bool,
}

impl<'c> JobSpec<'c> {
    /// Describe a job for `circuit` with the default knobs.
    pub fn new(circuit: &'c Circuit) -> Self {
        JobSpec {
            circuit,
            noise: NoiseModel::sycamore(),
            shots: 1000,
            strategy: Strategy::default_dcp(),
            seed: 0,
            leaf_samples: 1,
            fusion: true,
        }
    }

    /// Set the noise model.
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Set the shot count (minimum number of outcomes produced).
    pub fn shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Set the partition strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Outcomes drawn per leaf (cheap oversampling; see
    /// [`tqsim::ExecOptions`]).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn leaf_samples(mut self, n: u32) -> Self {
        assert!(n >= 1, "need at least one sample per leaf");
        self.leaf_samples = n;
        self
    }

    /// Toggle fused plan replay (default on). The fused path consumes the
    /// node RNG streams identically to the unfused path — `Counts` are the
    /// same either way — while performing fewer amplitude passes; the
    /// unfused path remains as the reference semantics (see
    /// [`tqsim::ExecOptions`]).
    pub fn fusion(mut self, enabled: bool) -> Self {
        self.fusion = enabled;
        self
    }
}

/// How much planning work the batch shared across jobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Distinct `(circuit, noise, shots, strategy)` plans computed.
    pub planned: usize,
    /// Jobs that reused an already-computed plan (and its materialised
    /// subcircuits) instead of planning again.
    pub reused: usize,
}

/// Results of a [`Batch::run`]: one [`RunResult`] per job, in submission
/// order, plus planning-reuse statistics.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Per-job results, in the order the jobs were submitted.
    pub jobs: Vec<RunResult>,
    /// Plan-dedup statistics.
    pub plans: PlanStats,
}

/// A set of jobs bound to an engine, ready to run.
#[must_use = "a batch does nothing until run()"]
pub struct Batch<'e, 'c> {
    engine: &'e Engine,
    jobs: Vec<JobSpec<'c>>,
}

/// A planned job: the partition, materialised subcircuits, and the
/// per-subcircuit **compiled fused plans**, shareable across jobs whose
/// planning inputs are identical — plan dedup therefore also dedups
/// compilation (the plans are compiled once per distinct
/// `(circuit, noise, shots, strategy)` and replayed by every node of every
/// job that shares them).
struct PlannedTree {
    partition: Partition,
    subcircuits: Arc<Vec<Circuit>>,
    compiled: Arc<Vec<CompiledCircuit>>,
}

impl<'c> Batch<'_, 'c> {
    /// Plan (with dedup) and execute every job on the engine's pool.
    ///
    /// Jobs run one after another; each job's tree saturates the pool on
    /// its own, so inter-job parallelism would only add memory pressure.
    ///
    /// # Errors
    ///
    /// Returns the first [`PlanError`] encountered; planning happens
    /// up-front, so no job executes unless every job plans.
    pub fn run(self) -> Result<BatchResult, PlanError> {
        // Serialize whole batches: concurrent submitters would otherwise
        // reset each other's phase-scoped high-water marks and could
        // receive each other's task panics out of `wait_idle`. A poisoned
        // gate just means a previous batch panicked; the pool itself is
        // still healthy, so continue.
        let _running = match self.engine.run_gate.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Plan with dedup: linear scan over the first job of each distinct
        // plan is fine at batch sizes where planning cost matters
        // (planning is O(gates), and so is the content comparison).
        let mut planned: Vec<(usize, Arc<PlannedTree>)> = Vec::new();
        let mut stats = PlanStats::default();
        let mut assignments: Vec<Arc<PlannedTree>> = Vec::with_capacity(self.jobs.len());
        for job in &self.jobs {
            let existing = planned.iter().find(|&&(idx, _)| {
                let prev = &self.jobs[idx];
                prev.shots == job.shots
                    && prev.strategy == job.strategy
                    && prev.noise == job.noise
                    // Pointer equality is the cheap common case (one
                    // circuit threaded through a seed sweep); fall back to
                    // content equality so separately built but identical
                    // circuits still share a plan.
                    && (std::ptr::eq(prev.circuit, job.circuit) || prev.circuit == job.circuit)
            });
            match existing {
                Some((_, tree)) => {
                    stats.reused += 1;
                    assignments.push(Arc::clone(tree));
                }
                None => {
                    let partition = job.strategy.plan(job.circuit, &job.noise, job.shots)?;
                    let subcircuits = Arc::new(partition.subcircuits(job.circuit));
                    let compiled =
                        Arc::new(subcircuits.iter().map(|sc| job.noise.compile(sc)).collect());
                    let tree = Arc::new(PlannedTree {
                        partition,
                        subcircuits,
                        compiled,
                    });
                    stats.planned += 1;
                    assignments.push(Arc::clone(&tree));
                    planned.push((assignments.len() - 1, tree));
                }
            }
        }

        let mut results = Vec::with_capacity(self.jobs.len());
        for (job, tree) in self.jobs.iter().zip(&assignments) {
            results.push(exec::run_tree(
                &self.engine.pool,
                &tree.partition,
                &tree.subcircuits,
                &tree.compiled,
                job.circuit.n_qubits(),
                &job.noise,
                job.seed,
                job.leaf_samples,
                job.fusion,
            ));
        }
        Ok(BatchResult {
            jobs: results,
            plans: stats,
        })
    }
}

/// The parallel tree-execution engine: a persistent [`WorkerPool`] plus the
/// batched job front-end. See the [crate docs](self) for an example.
///
/// `Engine` is `Sync`; concurrent [`Batch::run`] calls from several
/// threads are **serialized** against each other (one batch's trees fully
/// saturate the pool anyway, and serializing keeps per-job memory
/// metrics and panic delivery correctly scoped to their own batch).
pub struct Engine {
    pool: WorkerPool,
    /// Serializes batch execution; see the struct docs.
    run_gate: std::sync::Mutex<()>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Engine[{} workers]", self.pool.workers())
    }
}

impl Engine {
    /// Spin up the worker pool.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine {
            pool: WorkerPool::new(cfg.parallelism),
            run_gate: std::sync::Mutex::new(()),
        }
    }

    /// Worker count.
    pub fn parallelism(&self) -> usize {
        self.pool.workers()
    }

    /// Bind a set of jobs to this engine (execute with [`Batch::run`]).
    pub fn submit<'e, 'c>(&'e self, jobs: Vec<JobSpec<'c>>) -> Batch<'e, 'c> {
        Batch { engine: self, jobs }
    }

    /// Run a single [`Tqsim`] description on this engine (the
    /// `.parallelism(n)` builder option selects the worker count only when
    /// the engine is constructed via [`run_parallel`][RunParallel]; an
    /// explicit engine's own pool is used as-is).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] for unplannable inputs.
    pub fn run_sim(&self, sim: &Tqsim<'_>) -> Result<RunResult, PlanError> {
        let job = JobSpec::new(sim.circuit_ref())
            .noise(sim.noise_ref().clone())
            .shots(sim.shots_count())
            .strategy(sim.strategy_ref().clone())
            .seed(sim.seed_value());
        let mut result = self.submit(vec![job]).run()?;
        Ok(result.jobs.remove(0))
    }

    /// Pre-fill every worker's buffer pool for `n_qubits`-wide jobs with
    /// tree depth `k`, so running such jobs draws from the free lists
    /// instead of the heap (observable via [`Engine::pool_stats`]).
    ///
    /// Provisions `2 · (k + 2)` buffers per worker: a depth-first chain
    /// holds at most `k + 1` buffers, and a worker whose chain is pinned
    /// by stolen children can start a second chain, so double the chain
    /// depth (plus slack) covers every schedule seen in practice. The
    /// bound is a heuristic, not an invariant — under a pathological
    /// many-core schedule the pool simply falls back to allocating, which
    /// is visible in [`PoolStats::allocations`] but never incorrect.
    ///
    /// [`PoolStats::allocations`]: tqsim_statevec::PoolStats::allocations
    pub fn prewarm(&self, n_qubits: u16, k: usize) {
        self.pool.prewarm(n_qubits, 2 * (k + 2));
    }

    /// Aggregate state-buffer pool statistics (allocations, reuses, live
    /// high-water across all workers).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.pool_stats()
    }

    /// Direct access to the worker pool (shot-level helpers, custom tasks).
    pub fn worker_pool(&self) -> &WorkerPool {
        &self.pool
    }
}

/// Extension trait wiring [`Tqsim::parallelism`] to this engine.
pub trait RunParallel {
    /// Plan and execute on a transient engine honouring the builder's
    /// `.parallelism(n)` option. For repeated runs, build one [`Engine`]
    /// and use [`Engine::run_sim`] to amortise pool spin-up and keep warm
    /// buffers.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] for unplannable inputs.
    fn run_parallel(&self) -> Result<RunResult, PlanError>;
}

impl RunParallel for Tqsim<'_> {
    fn run_parallel(&self) -> Result<RunResult, PlanError> {
        Engine::new(EngineConfig::default().parallelism(self.parallelism_degree())).run_sim(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqsim_circuit::generators;

    #[test]
    fn batch_deduplicates_identical_plans() {
        let qft = generators::qft(6);
        let bv = generators::bv(6);
        let engine = Engine::new(EngineConfig::default().parallelism(2));
        let qft_rebuilt = generators::qft(6); // equal content, different allocation
        let result = engine
            .submit(vec![
                JobSpec::new(&qft).shots(50).seed(1),
                JobSpec::new(&qft).shots(50).seed(2), // same plan, new seed
                JobSpec::new(&qft).shots(200).seed(3), // different shots
                JobSpec::new(&bv).shots(50).seed(4),  // different circuit
                JobSpec::new(&qft_rebuilt).shots(50).seed(5), // content-equal ⇒ reuses plan 1
            ])
            .run()
            .unwrap();
        assert_eq!(
            result.plans,
            PlanStats {
                planned: 3,
                reused: 2
            }
        );
        assert_eq!(result.jobs.len(), 5);
        assert_eq!(result.jobs[0].tree, result.jobs[1].tree);
        assert_ne!(
            result.jobs[0].counts, result.jobs[1].counts,
            "same plan, different seeds ⇒ different outcomes"
        );
        for job in &result.jobs {
            assert!(job.counts.total() >= 50);
        }
    }

    #[test]
    fn engine_output_is_parallelism_invariant() {
        let circuit = generators::qv(6, 2);
        let run = |workers| {
            let engine = Engine::new(EngineConfig::default().parallelism(workers));
            engine
                .submit(vec![JobSpec::new(&circuit).shots(100).seed(42)])
                .run()
                .unwrap()
                .jobs
                .remove(0)
        };
        let serial = run(1);
        for workers in [2, 4, 8] {
            let parallel = run(workers);
            assert_eq!(serial.counts, parallel.counts, "{workers} workers");
            assert_eq!(serial.ops, parallel.ops, "{workers} workers");
        }
    }

    #[test]
    fn prewarmed_engine_allocates_nothing_at_steady_state() {
        let circuit = generators::qft(8);
        let engine = Engine::new(EngineConfig::default().parallelism(2));
        let spec = |seed| {
            JobSpec::new(&circuit)
                .shots(64)
                .strategy(Strategy::Custom {
                    arities: vec![16, 2, 2],
                })
                .seed(seed)
        };
        // Warm-up run covers every buffer the schedule can need…
        engine.submit(vec![spec(1)]).run().unwrap();
        engine.prewarm(8, 3);
        let warm = engine.pool_stats().allocations;
        // …so further runs must be allocation-free.
        engine.submit(vec![spec(2), spec(3)]).run().unwrap();
        let stats = engine.pool_stats();
        assert_eq!(
            stats.allocations, warm,
            "zero per-node allocations after warm-up"
        );
        assert!(stats.reuses > 0);
        assert_eq!(stats.outstanding, 0, "every buffer returned");
    }

    #[test]
    fn oversampled_leaves_are_schedule_and_fusion_invariant() {
        // leaf_samples > 1 exercises the batched sample_many walk shared
        // with the serial executor; counts must not depend on parallelism
        // or on the fusion toggle.
        let circuit = generators::qft(6);
        let run = |workers: usize, fusion: bool| {
            let engine = Engine::new(EngineConfig::default().parallelism(workers));
            engine
                .submit(vec![JobSpec::new(&circuit)
                    .shots(32)
                    .leaf_samples(4)
                    .seed(21)
                    .fusion(fusion)])
                .run()
                .unwrap()
                .jobs
                .remove(0)
        };
        let reference = run(1, true);
        assert_eq!(reference.counts.total(), 4 * reference.tree.outcomes());
        for (workers, fusion) in [(4, true), (1, false), (4, false)] {
            let r = run(workers, fusion);
            assert_eq!(
                r.counts, reference.counts,
                "workers {workers}, fusion {fusion}"
            );
        }
    }

    #[test]
    fn run_sim_honours_the_builder() {
        let circuit = generators::qft(6);
        let engine = Engine::new(EngineConfig::default().parallelism(2));
        let sim = Tqsim::new(&circuit).shots(64).seed(5);
        let r = engine.run_sim(&sim).unwrap();
        assert!(r.counts.total() >= 64);
        let r2 = sim.run_parallel().unwrap();
        assert_eq!(r.counts, r2.counts, "same seed ⇒ same outcomes on any pool");
    }

    #[test]
    fn concurrent_batches_on_one_engine_are_serialized_and_correct() {
        let circuit = generators::qft(6);
        let engine = Engine::new(EngineConfig::default().parallelism(2));
        let reference = engine
            .submit(vec![JobSpec::new(&circuit).shots(64).seed(9)])
            .run()
            .unwrap()
            .jobs
            .remove(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        engine
                            .submit(vec![JobSpec::new(&circuit).shots(64).seed(9)])
                            .run()
                            .unwrap()
                            .jobs
                            .remove(0)
                    })
                })
                .collect();
            for handle in handles {
                let r = handle.join().unwrap();
                assert_eq!(
                    r.counts, reference.counts,
                    "serialized batches stay correct"
                );
                assert!(r.peak_states >= 1, "metrics scoped to the owning batch");
            }
        });
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = Engine::new(EngineConfig::default().parallelism(1));
        let result = engine.submit(Vec::new()).run().unwrap();
        assert!(result.jobs.is_empty());
        assert_eq!(result.plans, PlanStats::default());
    }
}
