//! # tqsim-engine
//!
//! Pooled, work-stealing **parallel tree-execution engine** for TQSim, with
//! a batched job API and a multi-tenant scheduler.
//!
//! The paper's computational-reuse insight turns noisy Monte-Carlo
//! simulation into a tree walk; this crate makes that walk run as fast as
//! the hardware allows:
//!
//! - [`WorkerPool`] — a fixed set of worker threads with per-worker LIFO
//!   deques, FIFO stealing, and a per-worker [`StatePool`] so steady-state
//!   execution performs zero heap allocations;
//! - the tree executor (internal, see `exec`) — every tree node is a
//!   dataflow task with a path-derived RNG stream, so output `Counts` are
//!   **bit-identical at every parallelism level** for a fixed seed;
//! - [`Engine`] / [`JobSpec`] / [`Batch`] — submit many
//!   `(circuit, noise, shots, strategy)` jobs at once; identical partition
//!   plans are computed once and shared (cross-*job* reuse, one step beyond
//!   the paper's cross-shot reuse), with [`PlanStats`] reporting the
//!   dedup win;
//! - [`JobPlan`] / [`PlannedJob`] / [`Engine::start`] — the **multi-tenant**
//!   surface: pre-planned jobs start without blocking, any number can share
//!   the pool at once, each fires a completion callback from the worker
//!   that retires its last tree node, and an optional [`ChunkSink`] streams
//!   leaf outcomes while the job is still running. This is what the
//!   `tqsim-service` front-end schedules concurrent client jobs through.
//!
//! Multi-job batches **overlap** on the pool by default: jobs whose trees
//! are too narrow to saturate the workers run concurrently (each with its
//! own path-seeded RNG streams, so per-job `Counts` are bit-identical to a
//! serial run), while a saturating job is admitted alone.
//! [`Batch::sequential`] restores strict one-after-another execution with
//! per-job phase-scoped memory metrics.
//!
//! The whole stack is **generic over the execution backend**
//! ([`tqsim_statevec::PooledBackend`]): [`Engine::new`] pools single-node
//! `StateVector`s, while [`Engine::with_backend`] accepts any backend —
//! `tqsim-cluster`'s `ClusterBackend` runs every tree node on a
//! distributed state vector sliced across a simulated node group, so
//! circuits whose states exceed one node's memory use the same pooled,
//! work-stealing executor. For a fixed seed, `Counts` are bit-identical
//! across backends *and* parallelism levels (property-tested in
//! `tests/prop_engine_cluster.rs`).
//!
//! ```
//! use tqsim_engine::{Engine, EngineConfig, JobSpec};
//! use tqsim_circuit::generators;
//!
//! let circuit = generators::qft(6);
//! let engine = Engine::new(EngineConfig::default().parallelism(2));
//! // Three jobs, two of which share one partition plan.
//! let batch = engine.submit(vec![
//!     JobSpec::new(&circuit).shots(64).seed(1),
//!     JobSpec::new(&circuit).shots(64).seed(2),
//!     JobSpec::new(&circuit).shots(256).seed(3),
//! ]);
//! let result = batch.run()?;
//! assert_eq!(result.jobs.len(), 3);
//! assert_eq!(result.plans.planned, 2);
//! assert_eq!(result.plans.reused, 1);
//! # Ok::<(), tqsim::PlanError>(())
//! ```
//!
//! To parallelise a [`Tqsim`] builder description, set
//! [`Tqsim::parallelism`] and hand it to the engine:
//!
//! ```
//! use tqsim::Tqsim;
//! use tqsim_engine::RunParallel;
//! use tqsim_circuit::generators;
//!
//! let circuit = generators::qft(6);
//! let sim = Tqsim::new(&circuit).shots(128).seed(9).parallelism(2);
//! let result = sim.run_parallel()?;
//! assert!(result.counts.total() >= 128);
//! # Ok::<(), tqsim::PlanError>(())
//! ```
//!
//! [`StatePool`]: tqsim_statevec::StatePool

#![warn(missing_docs)]

mod exec;
pub mod pool;

pub use pool::{Task, WorkerCtx, WorkerPool};
pub use tqsim_statevec::{FusionConfig, PoolStats};

use std::sync::{mpsc, Arc};
use tqsim::{Partition, PlanError, RunResult, Strategy, Tqsim, TreeStructure};
use tqsim_circuit::Circuit;
use tqsim_noise::NoiseModel;
use tqsim_statevec::{CompiledCircuit, PooledBackend, SingleNode};

/// A streaming outcome sink: called from worker threads with each leaf
/// batch's outcomes as soon as the leaf is sampled, long before the job
/// completes. Chunk *arrival order* is scheduling-dependent; the multiset
/// of streamed outcomes always equals the job's final histogram.
pub type ChunkSink = Arc<dyn Fn(&[u64]) + Send + Sync>;

/// Engine construction options.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    parallelism: usize,
    /// Observability target: workers report per-worker busy/idle/steal
    /// counters and task latencies into this registry under the given
    /// `engine` scope label (None ⇒ uninstrumented; the default).
    observe: Option<(Arc<tqsim_obs::Registry>, String)>,
}

impl Default for EngineConfig {
    /// One worker per available hardware thread.
    fn default() -> Self {
        EngineConfig {
            parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            observe: None,
        }
    }
}

impl EngineConfig {
    /// Same as [`EngineConfig::default`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn parallelism(mut self, n: usize) -> Self {
        assert!(n >= 1, "parallelism must be at least 1");
        self.parallelism = n;
        self
    }

    /// Report worker-pool metrics into `registry`, labeling every
    /// instrument with `engine=scope` (so several engines — e.g. the
    /// service's single-node and cluster pools — share one registry
    /// without colliding). See
    /// [`WorkerPool::with_backend_observed`][crate::WorkerPool::with_backend_observed].
    pub fn observe(mut self, registry: Arc<tqsim_obs::Registry>, scope: &str) -> Self {
        self.observe = Some((registry, scope.to_string()));
        self
    }
}

/// One simulation request: a circuit with noise, shot budget, partition
/// strategy and seed. Defaults mirror [`Tqsim::new`]: Sycamore noise,
/// 1000 shots, DCP, seed 0, one sample per leaf.
#[derive(Clone, Debug)]
pub struct JobSpec<'c> {
    circuit: &'c Circuit,
    noise: NoiseModel,
    shots: u64,
    strategy: Strategy,
    seed: u64,
    leaf_samples: u32,
    fusion: bool,
    fusion_window: FusionConfig,
}

impl<'c> JobSpec<'c> {
    /// Describe a job for `circuit` with the default knobs.
    pub fn new(circuit: &'c Circuit) -> Self {
        JobSpec {
            circuit,
            noise: NoiseModel::sycamore(),
            shots: 1000,
            strategy: Strategy::default_dcp(),
            seed: 0,
            leaf_samples: 1,
            fusion: true,
            fusion_window: FusionConfig::default(),
        }
    }

    /// Set the noise model.
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Set the shot count (minimum number of outcomes produced).
    pub fn shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Set the partition strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Outcomes drawn per leaf (cheap oversampling; see
    /// [`tqsim::ExecOptions`]).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn leaf_samples(mut self, n: u32) -> Self {
        assert!(n >= 1, "need at least one sample per leaf");
        self.leaf_samples = n;
        self
    }

    /// Toggle fused plan replay (default on). The fused path consumes the
    /// node RNG streams identically to the unfused path — `Counts` are the
    /// same either way — while performing fewer amplitude passes; the
    /// unfused path remains as the reference semantics (see
    /// [`tqsim::ExecOptions`]).
    pub fn fusion(mut self, enabled: bool) -> Self {
        self.fusion = enabled;
        self
    }

    /// Set the fusion window for plan compilation (`max_fuse_qubits: 3`
    /// enables 3-qubit `Mat8` clusters; the default keeps 2-qubit `Mat4`
    /// windows). Jobs with different windows never share a plan.
    pub fn fusion_window(mut self, window: FusionConfig) -> Self {
        self.fusion_window = window;
        self
    }
}

/// A fully planned, owned, immutable job: the partition, materialised
/// subcircuits and the per-subcircuit **compiled fused plans**, plus the
/// planning inputs they were derived from. Shareable (via `Arc`) across
/// any number of jobs, batches and service requests whose planning inputs
/// are identical — sharing a `JobPlan` is what makes plan dedup also dedup
/// DCP planning *and* compilation.
///
/// Unlike [`JobSpec`], a `JobPlan` borrows nothing: the `tqsim-service`
/// front-end caches these across requests for the lifetime of the service
/// (keyed by circuit fingerprint + noise + strategy + shots), so a
/// repeated circuit skips planning and compilation entirely.
pub struct JobPlan {
    pub(crate) partition: Partition,
    pub(crate) subcircuits: Arc<Vec<Circuit>>,
    pub(crate) compiled: Arc<Vec<CompiledCircuit>>,
    pub(crate) n_qubits: u16,
    pub(crate) noise: NoiseModel,
    shots: u64,
}

impl std::fmt::Debug for JobPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JobPlan[{} qubits, {} subcircuits, tree {}]",
            self.n_qubits,
            self.subcircuits.len(),
            self.partition.tree
        )
    }
}

impl JobPlan {
    /// Plan `circuit` for `shots` under `noise` with `strategy`, then
    /// materialise and compile every subcircuit. The expensive part of a
    /// job, done exactly once per distinct planning input.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] for unplannable inputs.
    pub fn plan(
        circuit: &Circuit,
        noise: &NoiseModel,
        shots: u64,
        strategy: &Strategy,
    ) -> Result<JobPlan, PlanError> {
        Self::plan_with(circuit, noise, shots, strategy, FusionConfig::default())
    }

    /// [`JobPlan::plan`] with an explicit fusion window for subcircuit
    /// compilation (`max_fuse_qubits: 3` enables `Mat8` clusters).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] for unplannable inputs.
    pub fn plan_with(
        circuit: &Circuit,
        noise: &NoiseModel,
        shots: u64,
        strategy: &Strategy,
        fusion: FusionConfig,
    ) -> Result<JobPlan, PlanError> {
        let partition = strategy.plan(circuit, noise, shots)?;
        let subcircuits = Arc::new(partition.subcircuits(circuit));
        let compiled = Arc::new(
            subcircuits
                .iter()
                .map(|sc| noise.compile_with(sc, fusion))
                .collect(),
        );
        Ok(JobPlan {
            partition,
            subcircuits,
            compiled,
            n_qubits: circuit.n_qubits(),
            noise: noise.clone(),
            shots,
        })
    }

    /// The planned tree shape.
    pub fn tree(&self) -> &TreeStructure {
        &self.partition.tree
    }

    /// The underlying partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Register width of the planned circuit.
    pub fn n_qubits(&self) -> u16 {
        self.n_qubits
    }

    /// The noise model the plan was compiled against.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The shot budget the plan was sized for.
    pub fn shots(&self) -> u64 {
        self.shots
    }
}

/// An owned, ready-to-start job bound to a shared [`JobPlan`]: the
/// multi-tenant counterpart of [`JobSpec`], consumed by [`Engine::start`].
#[derive(Clone, Debug)]
pub struct PlannedJob {
    plan: Arc<JobPlan>,
    seed: u64,
    leaf_samples: u32,
    fusion: bool,
}

impl PlannedJob {
    /// A job executing `plan` with seed 0, one sample per leaf, fusion on.
    pub fn new(plan: Arc<JobPlan>) -> Self {
        PlannedJob {
            plan,
            seed: 0,
            leaf_samples: 1,
            fusion: true,
        }
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Outcomes drawn per leaf (see [`JobSpec::leaf_samples`]).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn leaf_samples(mut self, n: u32) -> Self {
        assert!(n >= 1, "need at least one sample per leaf");
        self.leaf_samples = n;
        self
    }

    /// Toggle fused plan replay (see [`JobSpec::fusion`]).
    pub fn fusion(mut self, enabled: bool) -> Self {
        self.fusion = enabled;
        self
    }

    /// The shared plan this job replays.
    pub fn plan(&self) -> &Arc<JobPlan> {
        &self.plan
    }
}

/// How much planning work the batch shared across jobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Distinct `(circuit, noise, shots, strategy)` plans computed.
    pub planned: usize,
    /// Jobs that reused an already-computed plan (and its materialised
    /// subcircuits) instead of planning again.
    pub reused: usize,
}

/// Results of a [`Batch::run`]: one [`RunResult`] per job, in submission
/// order, plus planning-reuse statistics.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Per-job results, in the order the jobs were submitted.
    pub jobs: Vec<RunResult>,
    /// Plan-dedup statistics.
    pub plans: PlanStats,
}

/// Batch execution mode: overlapped (default) or strictly sequential.
#[derive(Clone, Copy, Debug)]
enum BatchMode {
    /// Jobs overlap on the pool, bounded by the width heuristic (and by
    /// `max_jobs` when explicitly set, which also disables the heuristic).
    Overlapped { max_jobs: Option<usize> },
    /// One job at a time with per-job phase-scoped memory metrics.
    Sequential,
}

/// A set of jobs bound to an engine, ready to run.
#[must_use = "a batch does nothing until run()"]
pub struct Batch<'e, 'c, B: PooledBackend = SingleNode> {
    engine: &'e Engine<B>,
    jobs: Vec<JobSpec<'c>>,
    mode: BatchMode,
}

impl<'c, B: PooledBackend> Batch<'_, 'c, B> {
    /// Run jobs strictly one after another (the pre-service behaviour):
    /// each job's tree saturates the pool alone and its reported
    /// `peak_states`/`peak_memory_bytes` are phase-scoped to that job.
    /// Use for benchmarks that need per-job memory attribution.
    pub fn sequential(mut self) -> Self {
        self.mode = BatchMode::Sequential;
        self
    }

    /// Overlap up to `n` jobs regardless of their tree widths (the default
    /// mode caps overlap by the width heuristic instead: jobs are admitted
    /// while the running jobs' root arities sum below the worker count).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn concurrency(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one concurrent job");
        self.mode = BatchMode::Overlapped { max_jobs: Some(n) };
        self
    }

    /// Plan (with dedup) and execute every job on the engine's pool.
    ///
    /// By default jobs **overlap**: a job whose tree cannot saturate the
    /// pool leaves workers free, so the scheduler admits further jobs
    /// until the running root arities cover the worker count (or the
    /// explicit [`Batch::concurrency`] cap is hit). Per-job `Counts` are
    /// bit-identical to a sequential run — every node's RNG stream is
    /// derived from its own job's seed and tree path, never from
    /// scheduling. Memory metrics of overlapped jobs report the pool-wide
    /// high-water mark across the batch (use [`Batch::sequential`] for
    /// per-job attribution).
    ///
    /// # Errors
    ///
    /// Returns the first [`PlanError`] encountered; planning happens
    /// up-front, so no job executes unless every job plans.
    pub fn run(self) -> Result<BatchResult, PlanError> {
        // Serialize whole batches: concurrent submitters would otherwise
        // reset each other's phase-scoped high-water marks and could
        // receive each other's task panics. A poisoned gate just means a
        // previous batch panicked; the pool itself is still healthy, so
        // continue.
        let _running = match self.engine.run_gate.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Plan with dedup: linear scan over the first job of each distinct
        // plan is fine at batch sizes where planning cost matters
        // (planning is O(gates), and so is the content comparison).
        let mut planned: Vec<(usize, Arc<JobPlan>)> = Vec::new();
        let mut stats = PlanStats::default();
        let mut assignments: Vec<Arc<JobPlan>> = Vec::with_capacity(self.jobs.len());
        for job in &self.jobs {
            let existing = planned.iter().find(|&&(idx, _)| {
                let prev = &self.jobs[idx];
                prev.shots == job.shots
                    && prev.strategy == job.strategy
                    && prev.fusion_window == job.fusion_window
                    && prev.noise == job.noise
                    // Pointer equality is the cheap common case (one
                    // circuit threaded through a seed sweep); fall back to
                    // content equality so separately built but identical
                    // circuits still share a plan.
                    && (std::ptr::eq(prev.circuit, job.circuit) || prev.circuit == job.circuit)
            });
            match existing {
                Some((_, plan)) => {
                    stats.reused += 1;
                    assignments.push(Arc::clone(plan));
                }
                None => {
                    let plan = Arc::new(JobPlan::plan_with(
                        job.circuit,
                        &job.noise,
                        job.shots,
                        &job.strategy,
                        job.fusion_window,
                    )?);
                    stats.planned += 1;
                    assignments.push(Arc::clone(&plan));
                    planned.push((assignments.len() - 1, plan));
                }
            }
        }

        let results = match self.mode {
            BatchMode::Sequential => self
                .jobs
                .iter()
                .zip(&assignments)
                .map(|(job, plan)| {
                    exec::run_tree(
                        &self.engine.pool,
                        plan,
                        job.seed,
                        job.leaf_samples,
                        job.fusion,
                    )
                })
                .collect(),
            BatchMode::Overlapped { max_jobs } => {
                run_overlapped(self.engine, &self.jobs, &assignments, max_jobs)
            }
        };
        Ok(BatchResult {
            jobs: results,
            plans: stats,
        })
    }
}

/// The overlapping batch scheduler: admit jobs while the pool has slack,
/// collect completions in any order, return results in submission order.
fn run_overlapped<B: PooledBackend>(
    engine: &Engine<B>,
    jobs: &[JobSpec<'_>],
    plans: &[Arc<JobPlan>],
    max_jobs: Option<usize>,
) -> Vec<RunResult> {
    if jobs.is_empty() {
        return Vec::new();
    }
    let workers = engine.pool.workers() as u64;
    // An explicit concurrency cap replaces the width heuristic; the
    // default cap is one job per worker (admission normally stops far
    // earlier, once the running widths cover the pool).
    let cap = max_jobs.unwrap_or(engine.pool.workers()).max(1);
    let width_gated = max_jobs.is_none();
    // A job's appetite for workers: its root arity (the number of
    // immediately runnable tasks), saturating at the pool size.
    let width = |idx: usize| plans[idx].partition.tree.arities()[0].min(workers);

    engine.pool.pool_counters().reset_high_water();
    let (tx, rx) = mpsc::channel::<(usize, RunResult)>();
    let mut results: Vec<Option<RunResult>> = jobs.iter().map(|_| None).collect();
    let (mut next, mut running, mut running_width, mut completed) = (0usize, 0usize, 0u64, 0usize);
    while completed < jobs.len() {
        while next < jobs.len()
            && (running == 0 || (running < cap && (!width_gated || running_width < workers)))
        {
            let job = &jobs[next];
            let tx = tx.clone();
            let idx = next;
            exec::launch_tree(
                &engine.pool,
                &plans[next],
                job.seed,
                job.leaf_samples,
                job.fusion,
                None,
                Box::new(move |result| {
                    let _ = tx.send((idx, result));
                }),
            );
            running += 1;
            running_width += width(next);
            next += 1;
        }
        let (idx, result) = rx.recv().expect("job completion callback");
        results[idx] = Some(result);
        running -= 1;
        running_width -= width(idx);
        completed += 1;
    }
    // A panicking node abandons its subtree but still drains its job's
    // task count, so every job completes (with partial counts) and the
    // payload surfaces here — same propagation point as wait_idle.
    if let Some(payload) = engine.pool.take_panic() {
        std::panic::resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|r| r.expect("every job completed"))
        .collect()
}

/// The parallel tree-execution engine: a persistent [`WorkerPool`] plus the
/// batched job front-end. See the [crate docs](self) for an example.
///
/// `Engine` is `Sync`. Concurrent [`Batch::run`] calls from several
/// threads are **serialized** against each other (keeping per-batch memory
/// metrics and panic delivery correctly scoped); the multi-tenant
/// [`Engine::start`] path is not gated — any number of started jobs share
/// the pool concurrently, which is how the service front-end overlaps
/// client requests.
pub struct Engine<B: PooledBackend = SingleNode> {
    pool: WorkerPool<B>,
    /// Serializes batch execution; see the struct docs.
    run_gate: std::sync::Mutex<()>,
}

impl<B: PooledBackend> std::fmt::Debug for Engine<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Engine[{} workers]", self.pool.workers())
    }
}

impl Engine {
    /// Spin up a single-node worker pool (states are plain
    /// [`tqsim_statevec::StateVector`]s).
    pub fn new(cfg: EngineConfig) -> Self {
        Engine::with_backend(cfg, SingleNode)
    }
}

impl<B: PooledBackend> Engine<B> {
    /// Spin up a worker pool whose state buffers allocate through
    /// `backend` — e.g. `tqsim-cluster`'s node-group-aware backend, so
    /// tree nodes whose states exceed one node's memory run on the
    /// distributed state vector through the exact same executor. For a
    /// fixed seed, `Counts` are bit-identical across backends (and across
    /// parallelism levels): node RNG streams derive only from the job seed
    /// and tree path, and every backend replays the same compiled plans.
    pub fn with_backend(cfg: EngineConfig, backend: B) -> Self {
        let observe = cfg
            .observe
            .as_ref()
            .map(|(registry, scope)| (registry.as_ref(), scope.as_str()));
        Engine {
            pool: WorkerPool::with_backend_observed(cfg.parallelism, backend, observe),
            run_gate: std::sync::Mutex::new(()),
        }
    }

    /// Worker count.
    pub fn parallelism(&self) -> usize {
        self.pool.workers()
    }

    /// Bind a set of jobs to this engine (execute with [`Batch::run`]).
    pub fn submit<'e, 'c>(&'e self, jobs: Vec<JobSpec<'c>>) -> Batch<'e, 'c, B> {
        Batch {
            engine: self,
            jobs,
            mode: BatchMode::Overlapped { max_jobs: None },
        }
    }

    /// Start a planned job **without blocking** (the multi-tenant entry
    /// point): root tasks are injected immediately, any number of started
    /// jobs interleave on the pool, and `on_done` fires exactly once —
    /// from a worker thread — with the merged result when the job's last
    /// tree node retires. An optional `sink` receives each leaf batch's
    /// outcomes as soon as it is sampled (streaming results).
    ///
    /// Determinism: the job's `Counts` are bit-identical to running it
    /// alone (or through a sequential batch) with the same seed — node RNG
    /// streams depend only on the job seed and tree path. Memory metrics
    /// in the result are the pool-wide high-water mark, shared with
    /// whatever else overlapped the job.
    pub fn start(
        &self,
        job: &PlannedJob,
        sink: Option<ChunkSink>,
        on_done: impl FnOnce(RunResult) + Send + 'static,
    ) {
        exec::launch_tree(
            &self.pool,
            &job.plan,
            job.seed,
            job.leaf_samples,
            job.fusion,
            sink,
            Box::new(on_done),
        );
    }

    /// Blocking convenience over [`Engine::start`]: run one planned job to
    /// completion. Safe to call from many threads at once (jobs overlap).
    ///
    /// # Panics
    ///
    /// Re-raises a node-task panic instead of returning its partial
    /// result. The pool's panic slot is shared, so under overlap a
    /// concurrent caller may drain the payload first; completeness is
    /// therefore also checked per job (a healthy run yields exactly
    /// `tree.outcomes() × leaf_samples` samples) so a truncated result
    /// can never be returned as success.
    pub fn run_planned(&self, job: &PlannedJob) -> RunResult {
        let (tx, rx) = mpsc::channel();
        self.start(job, None, move |result| {
            let _ = tx.send(result);
        });
        let result = rx.recv().expect("job completion callback must fire");
        let expected = result.tree.outcomes() * u64::from(job.leaf_samples);
        if let Some(payload) = self.take_panic() {
            std::panic::resume_unwind(payload);
        }
        let produced = result.counts.total();
        assert!(
            produced >= expected,
            "job aborted by a node-task panic ({produced}/{expected} outcomes; \
             the payload surfaced at a concurrent caller)"
        );
        result
    }

    /// Take the first panic payload any task raised since the last check,
    /// if any — for callers of the non-blocking [`Engine::start`] path,
    /// which has no `wait_idle` to re-raise through. A panicking node
    /// abandons its own subtree; its job still completes (with partial
    /// counts) and the pool stays healthy.
    pub fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.pool.take_panic()
    }

    /// Run a single [`Tqsim`] description on this engine (the
    /// `.parallelism(n)` builder option selects the worker count only when
    /// the engine is constructed via [`run_parallel`][RunParallel]; an
    /// explicit engine's own pool is used as-is).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] for unplannable inputs.
    pub fn run_sim(&self, sim: &Tqsim<'_>) -> Result<RunResult, PlanError> {
        let job = JobSpec::new(sim.circuit_ref())
            .noise(sim.noise_ref().clone())
            .shots(sim.shots_count())
            .strategy(sim.strategy_ref().clone())
            .seed(sim.seed_value());
        let mut result = self.submit(vec![job]).run()?;
        Ok(result.jobs.remove(0))
    }

    /// Pre-fill every worker's buffer pool for `n_qubits`-wide jobs with
    /// tree depth `k`, so running such jobs draws from the free lists
    /// instead of the heap (observable via [`Engine::pool_stats`]).
    ///
    /// Provisions `2 · (k + 2)` buffers per worker: a depth-first chain
    /// holds at most `k + 1` buffers, and a worker whose chain is pinned
    /// by stolen children can start a second chain, so double the chain
    /// depth (plus slack) covers every schedule seen in practice. The
    /// bound is per concurrently running job: overlapped jobs multiply it
    /// (pass `k` summed over the jobs you expect to overlap, or accept
    /// pool growth to the natural high-water mark). Never incorrect —
    /// under-provisioning just falls back to allocating, visible in
    /// [`PoolStats::allocations`].
    ///
    /// [`PoolStats::allocations`]: tqsim_statevec::PoolStats::allocations
    pub fn prewarm(&self, n_qubits: u16, k: usize) {
        self.pool.prewarm(n_qubits, 2 * (k + 2));
    }

    /// Aggregate state-buffer pool statistics (allocations, reuses, live
    /// high-water across all workers).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.pool_stats()
    }

    /// Direct access to the worker pool (shot-level helpers, custom tasks).
    pub fn worker_pool(&self) -> &WorkerPool<B> {
        &self.pool
    }
}

/// Extension trait wiring [`Tqsim::parallelism`] to this engine.
pub trait RunParallel {
    /// Plan and execute on a transient engine honouring the builder's
    /// `.parallelism(n)` option. For repeated runs, build one [`Engine`]
    /// and use [`Engine::run_sim`] to amortise pool spin-up and keep warm
    /// buffers.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] for unplannable inputs.
    fn run_parallel(&self) -> Result<RunResult, PlanError>;
}

impl RunParallel for Tqsim<'_> {
    fn run_parallel(&self) -> Result<RunResult, PlanError> {
        Engine::new(EngineConfig::default().parallelism(self.parallelism_degree())).run_sim(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqsim_circuit::generators;

    #[test]
    fn batch_deduplicates_identical_plans() {
        let qft = generators::qft(6);
        let bv = generators::bv(6);
        let engine = Engine::new(EngineConfig::default().parallelism(2));
        let qft_rebuilt = generators::qft(6); // equal content, different allocation
        let result = engine
            .submit(vec![
                JobSpec::new(&qft).shots(50).seed(1),
                JobSpec::new(&qft).shots(50).seed(2), // same plan, new seed
                JobSpec::new(&qft).shots(200).seed(3), // different shots
                JobSpec::new(&bv).shots(50).seed(4),  // different circuit
                JobSpec::new(&qft_rebuilt).shots(50).seed(5), // content-equal ⇒ reuses plan 1
            ])
            .run()
            .unwrap();
        assert_eq!(
            result.plans,
            PlanStats {
                planned: 3,
                reused: 2
            }
        );
        assert_eq!(result.jobs.len(), 5);
        assert_eq!(result.jobs[0].tree, result.jobs[1].tree);
        assert_ne!(
            result.jobs[0].counts, result.jobs[1].counts,
            "same plan, different seeds ⇒ different outcomes"
        );
        for job in &result.jobs {
            assert!(job.counts.total() >= 50);
        }
    }

    #[test]
    fn engine_output_is_parallelism_invariant() {
        let circuit = generators::qv(6, 2);
        let run = |workers| {
            let engine = Engine::new(EngineConfig::default().parallelism(workers));
            engine
                .submit(vec![JobSpec::new(&circuit).shots(100).seed(42)])
                .run()
                .unwrap()
                .jobs
                .remove(0)
        };
        let serial = run(1);
        for workers in [2, 4, 8] {
            let parallel = run(workers);
            assert_eq!(serial.counts, parallel.counts, "{workers} workers");
            assert_eq!(serial.ops, parallel.ops, "{workers} workers");
        }
    }

    #[test]
    fn overlapped_batches_match_sequential_bit_for_bit() {
        // The satellite fix for ROADMAP's "Batch::run executes jobs
        // sequentially": overlapping must never change any job's output.
        let qft = generators::qft(6);
        let bv = generators::bv(6);
        let engine = Engine::new(EngineConfig::default().parallelism(4));
        let jobs = || {
            vec![
                JobSpec::new(&qft)
                    .shots(30)
                    .strategy(Strategy::Custom {
                        arities: vec![5, 3, 2],
                    })
                    .seed(1),
                JobSpec::new(&bv)
                    .shots(12)
                    .strategy(Strategy::Custom {
                        arities: vec![4, 3],
                    })
                    .seed(2),
                JobSpec::new(&qft)
                    .shots(30)
                    .strategy(Strategy::Custom {
                        arities: vec![5, 3, 2],
                    })
                    .seed(3),
            ]
        };
        let sequential = engine.submit(jobs()).sequential().run().unwrap();
        let overlapped = engine.submit(jobs()).run().unwrap();
        let pinned = engine.submit(jobs()).concurrency(3).run().unwrap();
        assert_eq!(sequential.plans, overlapped.plans);
        for (i, (s, o)) in sequential.jobs.iter().zip(&overlapped.jobs).enumerate() {
            assert_eq!(s.counts, o.counts, "job {i} (default overlap)");
            assert_eq!(s.ops, o.ops, "job {i}");
        }
        for (i, (s, p)) in sequential.jobs.iter().zip(&pinned.jobs).enumerate() {
            assert_eq!(s.counts, p.counts, "job {i} (explicit concurrency)");
        }
    }

    #[test]
    fn prewarmed_engine_allocates_nothing_at_steady_state() {
        let circuit = generators::qft(8);
        let engine = Engine::new(EngineConfig::default().parallelism(2));
        let spec = |seed| {
            JobSpec::new(&circuit)
                .shots(64)
                .strategy(Strategy::Custom {
                    arities: vec![16, 2, 2],
                })
                .seed(seed)
        };
        // Sequential mode: the zero-alloc provisioning bound is per job
        // (overlapped jobs legitimately hold more buffers live at once).
        engine.submit(vec![spec(1)]).sequential().run().unwrap();
        engine.prewarm(8, 3);
        let warm = engine.pool_stats().allocations;
        // …so further runs must be allocation-free.
        engine
            .submit(vec![spec(2), spec(3)])
            .sequential()
            .run()
            .unwrap();
        let stats = engine.pool_stats();
        assert_eq!(
            stats.allocations, warm,
            "zero per-node allocations after warm-up"
        );
        assert!(stats.reuses > 0);
        assert_eq!(stats.outstanding, 0, "every buffer returned");
    }

    #[test]
    fn oversampled_leaves_are_schedule_and_fusion_invariant() {
        // leaf_samples > 1 exercises the batched sample_many walk shared
        // with the serial executor; counts must not depend on parallelism
        // or on the fusion toggle.
        let circuit = generators::qft(6);
        let run = |workers: usize, fusion: bool| {
            let engine = Engine::new(EngineConfig::default().parallelism(workers));
            engine
                .submit(vec![JobSpec::new(&circuit)
                    .shots(32)
                    .leaf_samples(4)
                    .seed(21)
                    .fusion(fusion)])
                .run()
                .unwrap()
                .jobs
                .remove(0)
        };
        let reference = run(1, true);
        assert_eq!(reference.counts.total(), 4 * reference.tree.outcomes());
        for (workers, fusion) in [(4, true), (1, false), (4, false)] {
            let r = run(workers, fusion);
            assert_eq!(
                r.counts, reference.counts,
                "workers {workers}, fusion {fusion}"
            );
        }
    }

    #[test]
    fn run_sim_honours_the_builder() {
        let circuit = generators::qft(6);
        let engine = Engine::new(EngineConfig::default().parallelism(2));
        let sim = Tqsim::new(&circuit).shots(64).seed(5);
        let r = engine.run_sim(&sim).unwrap();
        assert!(r.counts.total() >= 64);
        let r2 = sim.run_parallel().unwrap();
        assert_eq!(r.counts, r2.counts, "same seed ⇒ same outcomes on any pool");
    }

    #[test]
    fn concurrent_batches_on_one_engine_are_serialized_and_correct() {
        let circuit = generators::qft(6);
        let engine = Engine::new(EngineConfig::default().parallelism(2));
        let reference = engine
            .submit(vec![JobSpec::new(&circuit).shots(64).seed(9)])
            .run()
            .unwrap()
            .jobs
            .remove(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        engine
                            .submit(vec![JobSpec::new(&circuit).shots(64).seed(9)])
                            .run()
                            .unwrap()
                            .jobs
                            .remove(0)
                    })
                })
                .collect();
            for handle in handles {
                let r = handle.join().unwrap();
                assert_eq!(
                    r.counts, reference.counts,
                    "serialized batches stay correct"
                );
                assert!(r.peak_states >= 1, "metrics scoped to the owning batch");
            }
        });
    }

    #[test]
    fn started_jobs_overlap_without_gating() {
        // The multi-tenant path: many threads driving run_planned on one
        // engine concurrently, each getting its own bit-exact result.
        let circuit = generators::qft(6);
        let engine = Engine::new(EngineConfig::default().parallelism(2));
        let plan = Arc::new(
            JobPlan::plan(
                &circuit,
                &NoiseModel::sycamore(),
                30,
                &Strategy::Custom {
                    arities: vec![5, 3, 2],
                },
            )
            .unwrap(),
        );
        let reference: Vec<_> = (0..4u64)
            .map(|seed| engine.run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(seed)))
            .collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u64)
                .map(|seed| {
                    let engine = &engine;
                    let plan = Arc::clone(&plan);
                    scope.spawn(move || engine.run_planned(&PlannedJob::new(plan).seed(seed)))
                })
                .collect();
            for (seed, handle) in handles.into_iter().enumerate() {
                let r = handle.join().unwrap();
                assert_eq!(r.counts, reference[seed].counts, "seed {seed}");
                assert_eq!(r.ops, reference[seed].ops, "seed {seed}");
            }
        });
    }

    #[test]
    fn engine_owned_by_completion_callback_tears_down_safely() {
        // The service pattern: the completion callback holds the last Arc
        // of the engine, so pool teardown can begin on a worker thread.
        // The pool must detach (never self-join) and the process must not
        // leak a panic.
        let circuit = generators::qft(6);
        let plan = Arc::new(
            JobPlan::plan(
                &circuit,
                &NoiseModel::sycamore(),
                12,
                &Strategy::Custom {
                    arities: vec![4, 3],
                },
            )
            .unwrap(),
        );
        for _ in 0..5 {
            let engine = Arc::new(Engine::new(EngineConfig::default().parallelism(2)));
            let (tx, rx) = mpsc::channel();
            let own = Arc::clone(&engine);
            engine.start(&PlannedJob::new(Arc::clone(&plan)), None, move |result| {
                let _engine_kept_alive_by_callback = own;
                let _ = tx.send(result.counts.total());
            });
            drop(engine); // the worker's clone may now be the last one
            assert_eq!(rx.recv().unwrap(), 12);
        }
    }

    #[test]
    fn cluster_backend_counts_match_single_node_bit_for_bit() {
        // The tentpole invariant: one JobPlan, two backends, identical
        // Counts. The cluster engine pools DistributedStateVectors through
        // the same executor; node RNG streams depend only on seed + tree
        // path, and plan replay is arithmetic-identical across backends.
        use tqsim_cluster::{ClusterBackend, InterconnectModel};
        let circuit = generators::qft(8);
        let plan = Arc::new(
            JobPlan::plan(
                &circuit,
                &NoiseModel::sycamore(),
                24,
                &Strategy::Custom {
                    arities: vec![4, 3, 2],
                },
            )
            .unwrap(),
        );
        let reference = Engine::new(EngineConfig::default().parallelism(1))
            .run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(7));
        let model = InterconnectModel::commodity_cluster();
        for nodes in [2usize, 4] {
            let engine = Engine::with_backend(
                EngineConfig::default().parallelism(2),
                ClusterBackend::new(nodes, model),
            );
            let r = engine.run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(7));
            assert_eq!(r.counts, reference.counts, "{nodes} nodes");
            assert_eq!(r.ops, reference.ops, "{nodes} nodes");
            let stats = engine.pool_stats();
            assert_eq!(stats.outstanding, 0, "every distributed buffer returned");
            assert!(stats.reuses > 0, "pooling must recycle distributed states");
        }
    }

    #[test]
    fn cluster_backend_batches_and_streaming_work() {
        // Batches (plan dedup, overlap) and streaming sinks are
        // backend-agnostic: the same surface works on the cluster engine.
        use tqsim_cluster::{ClusterBackend, InterconnectModel};
        let circuit = generators::qft(8);
        let engine = Engine::with_backend(
            EngineConfig::default().parallelism(2),
            ClusterBackend::new(4, InterconnectModel::commodity_cluster()),
        );
        let result = engine
            .submit(vec![
                JobSpec::new(&circuit).shots(12).seed(1),
                JobSpec::new(&circuit).shots(12).seed(2),
            ])
            .run()
            .unwrap();
        assert_eq!(result.plans.planned, 1);
        assert_eq!(result.plans.reused, 1);
        for job in &result.jobs {
            assert!(job.counts.total() >= 12);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = Engine::new(EngineConfig::default().parallelism(1));
        let result = engine.submit(Vec::new()).run().unwrap();
        assert!(result.jobs.is_empty());
        assert_eq!(result.plans, PlanStats::default());
        let result = engine.submit(Vec::new()).sequential().run().unwrap();
        assert!(result.jobs.is_empty());
    }
}
