//! Dynamic Circuit Partition (DCP) — paper §3.2.
//!
//! DCP operates in two phases: (1) the first subcircuit is the shortest
//! prefix whose length covers the state-copy cost, and its shot count `A0`
//! comes from the statistical sample-size bound (Eq. 5) applied to the
//! prefix's aggregate error rate (Eq. 4); (2) the remainder is split into
//! `k` equal subcircuits of uniform arity `Ar = ⌊(N/A0)^{1/k}⌋ ≥ 2`
//! (Eq. 6), with `k` capped by both the shot budget and the per-subcircuit
//! minimum length, and `A0` raised until the tree yields at least `N`
//! outcomes.

use crate::partition::{Partition, PlanError};
use crate::tree::TreeStructure;
use tqsim_circuit::Circuit;
use tqsim_noise::NoiseModel;
use tqsim_statevec::FusionConfig;

/// Tunables of the DCP planner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DcpConfig {
    /// Confidence level `z` for Eq. 5 (1.96 ≙ 95 %).
    pub confidence_z: f64,
    /// Margin of error `ε` for Eq. 5.
    pub margin: f64,
    /// State-copy cost in gate-equivalents (Fig. 10; measure with
    /// [`tqsim_statevec::profile`] or take a
    /// [`tqsim_statevec::CostProfile`] ratio). Also the minimum subcircuit
    /// length (§3.6).
    pub copy_cost: f64,
    /// Optional memory budget in bytes for the stored intermediate states
    /// (the executor keeps `k + 1` live states of `16·2^n` bytes each).
    pub memory_budget_bytes: Option<u64>,
    /// Optional hard cap on the number of subcircuits.
    pub max_subcircuits: Option<usize>,
    /// Charge candidate subcircuits their **compiled amplitude-pass count**
    /// (the fusion-aware [`tqsim_statevec::CompiledCircuit::amp_pass_estimate`]
    /// cost) instead of their source gate count, so boundary placement
    /// favours fusion-friendly splits and boundaries land on equal-pass
    /// quantiles. `copy_cost` is then measured in amplitude passes rather
    /// than gates. Off by default to preserve the paper-pinned plans.
    pub plan_aware: bool,
    /// Fusion window the plan-aware cost model assumes the executor will
    /// use: wider windows (`max_fuse_qubits` 3–5) collapse more gates per
    /// pass, and [`FusionConfig::boundary`] discounts the head window (it
    /// rides the parent→child copy) and the trailing window (it rides the
    /// sampling sweep). Must match the executor's config for the charged
    /// costs to be what replay actually measures.
    pub fusion: FusionConfig,
}

impl Default for DcpConfig {
    fn default() -> Self {
        DcpConfig {
            confidence_z: 1.96,
            margin: 0.03,
            copy_cost: 20.0,
            memory_budget_bytes: None,
            max_subcircuits: None,
            plan_aware: false,
            fusion: FusionConfig::default(),
        }
    }
}

impl DcpConfig {
    /// Validate parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::BadConfig`] for non-positive `z`, `ε`, or copy
    /// cost.
    pub fn validate(&self) -> Result<(), PlanError> {
        if self.confidence_z <= 0.0 || self.margin <= 0.0 || self.copy_cost <= 0.0 {
            return Err(PlanError::BadConfig(format!(
                "z={}, margin={}, copy_cost={} must all be positive",
                self.confidence_z, self.margin, self.copy_cost
            )));
        }
        Ok(())
    }
}

/// Eq. 5: minimum sample size for a finite population of `n_shots` with
/// estimated proportion `p_hat`, confidence `z` and margin `margin`.
///
/// Clamped to `[1, n_shots]`.
pub fn sample_size(z: f64, margin: f64, p_hat: f64, n_shots: u64) -> u64 {
    let p = p_hat.clamp(1e-12, 1.0 - 1e-12);
    let raw = z * z * p * (1.0 - p) / (margin * margin);
    let corrected = raw / (1.0 + raw / n_shots as f64);
    (corrected.ceil() as u64).clamp(1, n_shots)
}

/// Eq. 4: aggregate error rate `1 − ∏(1 − e_i)` of a gate slice.
pub fn aggregate_error_rate(
    circuit: &Circuit,
    range: std::ops::Range<usize>,
    noise: &NoiseModel,
) -> f64 {
    let survive: f64 = circuit.gates()[range]
        .iter()
        .map(|g| 1.0 - noise.gate_error_rate(g))
        .product();
    1.0 - survive
}

/// Run the DCP planner.
///
/// Falls back to the baseline partition `(N)` whenever reuse cannot pay for
/// itself: the circuit is shorter than twice the copy cost, or `A0`
/// already exhausts the shot budget.
///
/// # Errors
///
/// Returns [`PlanError`] for an empty circuit, zero shots, or invalid
/// configuration.
pub fn plan_dcp(
    circuit: &Circuit,
    noise: &NoiseModel,
    shots: u64,
    cfg: &DcpConfig,
) -> Result<Partition, PlanError> {
    cfg.validate()?;
    if circuit.is_empty() {
        return Err(PlanError::EmptyCircuit);
    }
    if shots == 0 {
        return Err(PlanError::ZeroShots);
    }
    if cfg.plan_aware {
        return plan_dcp_pass_costed(circuit, noise, shots, cfg);
    }
    let len = circuit.len();
    let min_len = (cfg.copy_cost.ceil() as usize).max(1);

    // Phase 1: first subcircuit = shortest prefix covering the copy cost.
    let l0 = min_len;
    if l0 >= len {
        // Too short to partition at all.
        return Partition::baseline(len, shots);
    }
    let p_hat = aggregate_error_rate(circuit, 0..l0, noise);
    let a0 = sample_size(cfg.confidence_z, cfg.margin, p_hat, shots);

    // Phase 2: how many equal subcircuits can the remainder support?
    let remaining = len - l0;
    let k_gates = remaining / min_len;
    let ratio = shots as f64 / a0 as f64;
    let k_shots = if ratio >= 2.0 {
        ratio.log2().floor() as usize
    } else {
        0
    };
    let mut k = k_gates.min(k_shots);
    if let Some(max_k) = cfg.max_subcircuits {
        k = k.min(max_k.saturating_sub(1));
    }
    if let Some(budget) = cfg.memory_budget_bytes {
        let state_bytes = 16u64 << circuit.n_qubits();
        let max_states = (budget / state_bytes.max(1)).max(2) as usize;
        // The executor keeps k + 1 live states.
        k = k.min(max_states.saturating_sub(1));
    }
    if k == 0 {
        return Partition::baseline(len, shots);
    }

    // Eq. 6: uniform arity for the remaining subcircuits.
    let ar = (ratio.powf(1.0 / k as f64).floor() as u64).max(2);
    // Raise A0 until the tree yields at least `shots` outcomes (this is how
    // the paper's QFT-14 example reaches A0 = 500 from Eq. 5's estimate).
    let reuse: u64 = ar.pow(k as u32);
    let a0 = a0.max(shots.div_ceil(reuse));

    let mut arities = Vec::with_capacity(k + 1);
    arities.push(a0);
    arities.extend(std::iter::repeat_n(ar, k));
    let tree = TreeStructure::new(arities).expect("arities are positive");

    // Boundaries: prefix, then the remainder in k equal chunks.
    let mut boundaries = Vec::with_capacity(k + 2);
    boundaries.push(0);
    boundaries.push(l0);
    for i in 1..=k {
        boundaries.push(l0 + remaining * i / k);
    }
    Partition::new(boundaries, tree)
}

/// `costs[i]` = estimated fused amplitude passes of the length-`i` prefix —
/// the cost [`tqsim_statevec::CompiledCircuit::amp_pass_estimate`] reports
/// for the prefix compiled in isolation under `fusion` — computed online in
/// one O(len) sweep by streaming gate classifications through a [`Fuser`]
/// and counting emitted sweeps plus the pending buffer.
///
/// Width-aware (the streaming fuser honours `fusion`, so 3–5-qubit clusters
/// count one pass) and boundary-aware: with [`FusionConfig::boundary`] set,
/// the head window (the ops emitted by the first flush event — they ride
/// the parent→child copy) and the trailing pending window (it rides the
/// sampling sweep) are both discounted.
fn fused_prefix_costs(circuit: &Circuit, fusion: FusionConfig) -> Vec<u64> {
    use tqsim_statevec::{classify, Fuser};
    let mut costs = Vec::with_capacity(circuit.len() + 1);
    costs.push(0);
    let mut fuser = Fuser::with_config(fusion);
    let mut emitted = 0u64;
    // Passes of the plan's head window, frozen at the first emission event:
    // everything flushed there was pending from gate 0, i.e. is exactly the
    // maximal no-emission plan prefix that `compile_with` hoists.
    let mut head_passes = 0u64;
    for gate in circuit {
        if let Some(op) = classify(gate) {
            let before = emitted;
            fuser.push(&op, &mut |_, noise_only| {
                if !noise_only {
                    emitted += 1;
                }
            });
            if fusion.boundary && head_passes == 0 {
                head_passes = emitted - before;
            }
        }
        costs.push(if fusion.boundary {
            // Head rides the copy, pending tail rides the sampling sweep.
            emitted - head_passes
        } else {
            emitted + fuser.pending_passes()
        });
    }
    costs
}

/// Plan-aware DCP: identical statistical machinery (Eqs. 4–6), but every
/// candidate subcircuit is charged its **compiled amplitude-pass count**
/// instead of its source gate count. The executors replay fused plans, so
/// passes — not gates — are what a subcircuit execution actually costs;
/// charging passes keeps the copy-cost break-even honest on
/// fusion-friendly circuits and places the remaining boundaries at equal
/// *pass* quantiles rather than equal gate counts.
fn plan_dcp_pass_costed(
    circuit: &Circuit,
    noise: &NoiseModel,
    shots: u64,
    cfg: &DcpConfig,
) -> Result<Partition, PlanError> {
    let len = circuit.len();
    let costs = fused_prefix_costs(circuit, cfg.fusion);
    let total = costs[len] as f64;

    // Phase 1: first subcircuit = shortest prefix whose *compiled* cost
    // covers the state-copy cost (now in pass units).
    let Some(l0) = (1..len).find(|&i| costs[i] as f64 >= cfg.copy_cost) else {
        return Partition::baseline(len, shots);
    };
    let p_hat = aggregate_error_rate(circuit, 0..l0, noise);
    let a0 = sample_size(cfg.confidence_z, cfg.margin, p_hat, shots);

    // Phase 2: how many equal-cost subcircuits can the remainder support?
    let remaining_cost = total - costs[l0] as f64;
    let k_cost = (remaining_cost / cfg.copy_cost).floor() as usize;
    let ratio = shots as f64 / a0 as f64;
    let k_shots = if ratio >= 2.0 {
        ratio.log2().floor() as usize
    } else {
        0
    };
    // Every subcircuit still needs at least one source gate.
    let mut k = k_cost.min(k_shots).min(len - l0);
    if let Some(max_k) = cfg.max_subcircuits {
        k = k.min(max_k.saturating_sub(1));
    }
    if let Some(budget) = cfg.memory_budget_bytes {
        let state_bytes = 16u64 << circuit.n_qubits();
        let max_states = (budget / state_bytes.max(1)).max(2) as usize;
        k = k.min(max_states.saturating_sub(1));
    }
    if k == 0 {
        return Partition::baseline(len, shots);
    }

    // Eq. 6 unchanged: uniform arity, A0 raised to cover the shot budget.
    let ar = (ratio.powf(1.0 / k as f64).floor() as u64).max(2);
    let reuse: u64 = ar.pow(k as u32);
    let a0 = a0.max(shots.div_ceil(reuse));

    let mut arities = Vec::with_capacity(k + 1);
    arities.push(a0);
    arities.extend(std::iter::repeat_n(ar, k));
    let tree = TreeStructure::new(arities).expect("arities are positive");

    // Boundaries at equal compiled-pass quantiles of the remainder, so
    // every subcircuit replays a comparable number of fused sweeps.
    let mut boundaries = Vec::with_capacity(k + 2);
    boundaries.push(0);
    boundaries.push(l0);
    let mut prev = l0;
    for i in 1..=k {
        let b = if i == k {
            len
        } else {
            let target = costs[l0] as f64 + remaining_cost * i as f64 / k as f64;
            ((prev + 1)..len)
                .find(|&j| costs[j] as f64 >= target)
                .unwrap_or(len)
                .min(len - (k - i)) // leave ≥ 1 gate per remaining subcircuit
                .max(prev + 1)
        };
        boundaries.push(b);
        prev = b;
    }
    Partition::new(boundaries, tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqsim_circuit::generators;

    #[test]
    fn sample_size_matches_textbook_values() {
        // Classic cochran example: p=0.5, z=1.96, e=0.05, infinite N ≈ 385.
        let n = sample_size(1.96, 0.05, 0.5, 1_000_000_000);
        assert!((380..=390).contains(&n), "{n}");
        // Finite-population correction shrinks it.
        let n_small = sample_size(1.96, 0.05, 0.5, 1000);
        assert!(n_small < n);
        assert!((270..=290).contains(&n_small), "{n_small}");
    }

    #[test]
    fn sample_size_clamps() {
        assert_eq!(sample_size(1.96, 0.03, 0.0, 100), 1);
        assert!(sample_size(1.96, 0.001, 0.5, 100) <= 100);
    }

    #[test]
    fn qft14_reproduces_paper_plan() {
        // Paper §5.1: QFT_14 (472 gates), 0.1 %/1.5 % depolarizing, 32 000
        // shots → 7 subcircuits, 500 shots on the first, theoretical max
        // speedup 3.53×.
        let c = generators::qft(14);
        let noise = tqsim_noise::NoiseModel::sycamore();
        let cfg = DcpConfig {
            copy_cost: 20.0,
            ..DcpConfig::default()
        };
        let p = plan_dcp(&c, &noise, 32_000, &cfg).unwrap();
        assert_eq!(p.k(), 7, "subcircuits: {}", p.k());
        let arities = p.tree.arities();
        assert_eq!(arities[0], 500, "A0 = {}", arities[0]);
        assert!(arities[1..].iter().all(|&a| a == 2));
        assert!(p.tree.outcomes() >= 32_000);
    }

    #[test]
    fn short_circuit_falls_back_to_baseline() {
        let c = generators::bv(6); // 16 gates
        let noise = tqsim_noise::NoiseModel::sycamore();
        let cfg = DcpConfig {
            copy_cost: 30.0,
            ..DcpConfig::default()
        };
        let p = plan_dcp(&c, &noise, 1000, &cfg).unwrap();
        assert_eq!(p.k(), 1);
        assert_eq!(p.tree.outcomes(), 1000);
    }

    #[test]
    fn bv_gets_two_subcircuits_with_moderate_copy_cost() {
        // The paper's BV observation: only 2 subcircuits fit.
        let c = generators::bv(16); // 46 gates
        let noise = tqsim_noise::NoiseModel::sycamore();
        let cfg = DcpConfig {
            copy_cost: 20.0,
            ..DcpConfig::default()
        };
        let p = plan_dcp(&c, &noise, 32_000, &cfg).unwrap();
        assert_eq!(p.k(), 2, "tree = {}", p.tree);
    }

    #[test]
    fn memory_budget_caps_depth() {
        let c = generators::qft(14);
        let noise = tqsim_noise::NoiseModel::sycamore();
        // Room for only 3 states of 2^14 amplitudes (16·2^14 = 256 KiB each).
        let cfg = DcpConfig {
            copy_cost: 20.0,
            memory_budget_bytes: Some(3 * 16 * (1 << 14)),
            ..DcpConfig::default()
        };
        let p = plan_dcp(&c, &noise, 32_000, &cfg).unwrap();
        assert!(p.k() <= 3, "k = {}", p.k());
    }

    #[test]
    fn max_subcircuits_respected() {
        let c = generators::qft(14);
        let noise = tqsim_noise::NoiseModel::sycamore();
        let cfg = DcpConfig {
            copy_cost: 20.0,
            max_subcircuits: Some(3),
            ..DcpConfig::default()
        };
        let p = plan_dcp(&c, &noise, 32_000, &cfg).unwrap();
        assert!(p.k() <= 3);
    }

    #[test]
    fn outcomes_always_cover_shots() {
        let noise = tqsim_noise::NoiseModel::sycamore();
        for shots in [100u64, 777, 1000, 4096, 32_000] {
            for gen in [
                generators::qft(10),
                generators::bv(12),
                generators::qv(10, 1),
            ] {
                let p = plan_dcp(&gen, &noise, shots, &DcpConfig::default()).unwrap();
                assert!(
                    p.tree.outcomes() >= shots,
                    "{} < {shots} for {}",
                    p.tree.outcomes(),
                    p.tree
                );
            }
        }
    }

    #[test]
    fn plan_aware_charges_compiled_passes_not_gates() {
        // QFT fuses ≈2.4×, so covering a 20-*pass* copy cost needs far more
        // than 20 source gates: the plan-aware prefix must be longer.
        let c = generators::qft(14);
        let noise = tqsim_noise::NoiseModel::sycamore();
        let classic = plan_dcp(&c, &noise, 32_000, &DcpConfig::default()).unwrap();
        let aware = plan_dcp(
            &c,
            &noise,
            32_000,
            &DcpConfig {
                plan_aware: true,
                ..DcpConfig::default()
            },
        )
        .unwrap();
        assert!(
            aware.boundaries()[1] > classic.boundaries()[1],
            "plan-aware prefix {} must exceed gate-counted prefix {}",
            aware.boundaries()[1],
            classic.boundaries()[1]
        );
        assert_eq!(aware.covered_gates(), c.len());
        assert!(aware.tree.outcomes() >= 32_000);
        // The prefix's compiled cost actually covers the copy cost, and the
        // one-gate-shorter prefix does not (shortest qualifying prefix).
        let costs = fused_prefix_costs(&c, FusionConfig::default());
        let l0 = aware.boundaries()[1];
        assert!(costs[l0] >= 20);
        assert!(costs[l0 - 1] < 20);
    }

    #[test]
    fn plan_aware_boundaries_are_pass_balanced() {
        let c = generators::qft(14);
        let noise = tqsim_noise::NoiseModel::sycamore();
        let cfg = DcpConfig {
            plan_aware: true,
            ..DcpConfig::default()
        };
        let p = plan_dcp(&c, &noise, 32_000, &cfg).unwrap();
        let costs = fused_prefix_costs(&c, cfg.fusion);
        let bounds = p.boundaries();
        assert!(bounds.len() >= 3, "expected a real partition, got {p:?}");
        // Per-subcircuit compiled costs past the prefix stay within 2× of
        // each other (equal-pass quantile cuts on a discrete cost curve).
        let seg_costs: Vec<u64> = bounds
            .windows(2)
            .skip(1)
            .map(|w| costs[w[1]] - costs[w[0]])
            .collect();
        let (min, max) = (
            *seg_costs.iter().min().unwrap(),
            *seg_costs.iter().max().unwrap(),
        );
        assert!(
            max <= 2 * min.max(1),
            "unbalanced compiled costs: {seg_costs:?}"
        );
    }

    #[test]
    fn plan_aware_respects_caps_and_fallback() {
        let noise = tqsim_noise::NoiseModel::sycamore();
        // Too short to cover the pass-denominated copy cost: baseline.
        let short = generators::bv(6);
        let p = plan_dcp(
            &short,
            &noise,
            1000,
            &DcpConfig {
                plan_aware: true,
                copy_cost: 60.0,
                ..DcpConfig::default()
            },
        )
        .unwrap();
        assert_eq!(p.k(), 1);
        // Caps still bite.
        let c = generators::qft(14);
        let p = plan_dcp(
            &c,
            &noise,
            32_000,
            &DcpConfig {
                plan_aware: true,
                max_subcircuits: Some(3),
                ..DcpConfig::default()
            },
        )
        .unwrap();
        assert!(p.k() <= 3);
    }

    #[test]
    fn plan_aware_outcomes_always_cover_shots() {
        let noise = tqsim_noise::NoiseModel::sycamore();
        let cfg = DcpConfig {
            plan_aware: true,
            ..DcpConfig::default()
        };
        for shots in [100u64, 777, 4096, 32_000] {
            for gen in [
                generators::qft(10),
                generators::bv(12),
                generators::qv(10, 1),
            ] {
                let p = plan_dcp(&gen, &noise, shots, &cfg).unwrap();
                assert!(p.tree.outcomes() >= shots);
                assert_eq!(p.covered_gates(), gen.len());
            }
        }
    }

    #[test]
    fn prefix_costs_match_compiled_estimates() {
        let c = generators::qft(8);
        let costs = fused_prefix_costs(&c, FusionConfig::default());
        assert_eq!(costs.len(), c.len() + 1);
        assert_eq!(costs[0], 0);
        // The full-circuit entry equals the compiled estimate.
        let compiled = tqsim_statevec::CompiledCircuit::compile(&c, |_| false);
        assert_eq!(costs[c.len()], compiled.amp_pass_estimate());
        // And fusion makes it strictly cheaper than the gate count.
        assert!(costs[c.len()] < c.len() as u64);
    }

    #[test]
    fn prefix_costs_track_width_and_boundary() {
        // The streaming estimator must agree with the compiled estimate for
        // every fusion window and with boundary fusion on, where the head
        // window rides the copy and the trailing window rides the sampler.
        for gen in [generators::qft(8), generators::qv(8, 2)] {
            let mut prev_total = u64::MAX;
            for max_fuse_qubits in [2u8, 3, 4, 5] {
                for boundary in [false, true] {
                    let cfg = FusionConfig {
                        max_fuse_qubits,
                        boundary,
                    };
                    let costs = fused_prefix_costs(&gen, cfg);
                    let compiled =
                        tqsim_statevec::CompiledCircuit::compile_with(&gen, |_| false, cfg);
                    assert_eq!(
                        costs[gen.len()],
                        compiled.amp_pass_estimate(),
                        "width {max_fuse_qubits} boundary {boundary}"
                    );
                    // Prefix costs are monotone in the prefix length.
                    assert!(costs.windows(2).all(|w| w[0] <= w[1]));
                    // Boundary fusion can only discount.
                    if boundary {
                        let eager = fused_prefix_costs(
                            &gen,
                            FusionConfig {
                                boundary: false,
                                ..cfg
                            },
                        );
                        assert!(costs[gen.len()] <= eager[gen.len()]);
                    } else {
                        assert!(costs[gen.len()] <= prev_total, "wider must not cost more");
                        prev_total = costs[gen.len()];
                    }
                }
            }
        }
    }

    #[test]
    fn config_validation() {
        let bad = DcpConfig {
            margin: 0.0,
            ..DcpConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
