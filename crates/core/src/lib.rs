//! # tqsim
//!
//! **T**ree-based **Q**uantum circuit **Sim**ulation: a Rust reproduction of
//! *"Accelerating Simulation of Quantum Circuits under Noise via
//! Computational Reuse"* (ISCA 2025).
//!
//! Noisy Monte-Carlo simulation re-executes a near-identical circuit for
//! thousands of shots. TQSim partitions the circuit into subcircuits and
//! shares each subcircuit's intermediate state across many shots, arranged
//! as a simulation tree `(A0, A1, …)`:
//!
//! - [`tree::TreeStructure`] — the tree notation and its node/outcome math;
//! - [`partition::Strategy`] — Baseline, UCP, XCP, **DCP** (the paper's
//!   contribution) and custom tree shapes;
//! - [`dcp`] — the Dynamic Circuit Partition planner (Eqs. 4–6);
//! - [`executor::TreeExecutor`] — DFS execution with state reuse and full
//!   cost accounting;
//! - [`metrics`] — state fidelity (Eq. 8) and normalized fidelity (Eq. 9);
//! - [`speedup`] — the §3.6 analytical speedup models;
//! - [`sim::Tqsim`] — a one-stop builder.
//!
//! ```
//! use tqsim::{metrics, Strategy, Tqsim};
//! use tqsim_circuit::generators;
//! use tqsim_noise::NoiseModel;
//!
//! let circuit = generators::bv(8);
//! let noise = NoiseModel::sycamore();
//!
//! let baseline = Tqsim::new(&circuit)
//!     .noise(noise.clone())
//!     .shots(400)
//!     .strategy(Strategy::Baseline)
//!     .run()?;
//! let tqsim = Tqsim::new(&circuit).noise(noise).shots(400).run()?;
//!
//! let ideal = metrics::ideal_distribution(&circuit);
//! let f_base = metrics::normalized_fidelity(&ideal, &baseline.counts.to_distribution());
//! let f_tree = metrics::normalized_fidelity(&ideal, &tqsim.counts.to_distribution());
//! assert!((f_base - f_tree).abs() < 0.2); // tight in the paper: ≤ 0.016 at 32k shots
//! # Ok::<(), tqsim::PlanError>(())
//! ```

#![warn(missing_docs)]

pub mod dcp;
pub mod executor;
pub mod metrics;
pub mod partition;
pub mod sim;
pub mod speedup;
pub mod tree;

pub use dcp::DcpConfig;
pub use executor::{
    draw_leaf_outcomes, draw_leaf_outcomes_fused, run_subcircuit, run_subcircuit_boundary,
    run_tree_nodes, Counts, ExecOptions, RunResult, TreeExecutor,
};
pub use partition::{Partition, PlanError, Strategy};
pub use sim::Tqsim;
pub use tqsim_statevec::OpCounts;
pub use tree::TreeStructure;
