//! DFS tree executor with intermediate-state reuse (paper §3.1/Fig. 7).

use crate::partition::{Partition, PlanError};
use crate::tree::TreeStructure;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use tqsim_circuit::{Circuit, GateKind};
use tqsim_noise::NoiseModel;
use tqsim_statevec::{
    CompiledCircuit, FusedOp, FusionConfig, OpCounts, PooledBackend, QuantumState, SingleNode,
    StateVector,
};

/// Measurement histogram of a simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    n_qubits: u16,
    map: HashMap<u64, u64>,
}

impl Counts {
    /// An empty histogram for `n_qubits`-bit outcomes.
    pub fn new(n_qubits: u16) -> Self {
        Counts {
            n_qubits,
            map: HashMap::new(),
        }
    }

    /// Register width of the outcomes.
    pub fn n_qubits(&self) -> u16 {
        self.n_qubits
    }

    /// Record one observation of `outcome`.
    pub fn increment(&mut self, outcome: u64) {
        *self.map.entry(outcome).or_insert(0) += 1;
    }

    /// Observations of a specific outcome.
    pub fn get(&self, outcome: u64) -> u64 {
        self.map.get(&outcome).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.map.values().sum()
    }

    /// Number of distinct outcomes observed.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }

    /// Iterate `(outcome, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// Fold another histogram into this one.
    ///
    /// The parallel engines accumulate per-worker histograms and merge them
    /// at the end; because addition commutes, the merged result is
    /// independent of worker scheduling.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ (merging 3-bit into 5-bit outcomes is
    /// almost certainly a bug).
    pub fn merge(&mut self, other: &Counts) {
        assert_eq!(
            self.n_qubits, other.n_qubits,
            "cannot merge histograms of different widths"
        );
        for (outcome, count) in other.iter() {
            *self.map.entry(outcome).or_insert(0) += count;
        }
    }

    /// The empirical distribution as a dense `2^n` vector.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or wider than 26 qubits (dense
    /// expansion would exceed memory).
    pub fn to_distribution(&self) -> Vec<f64> {
        assert!(
            self.n_qubits <= 26,
            "dense distribution limited to 26 qubits"
        );
        let total = self.total();
        assert!(total > 0, "empty histogram");
        let mut p = vec![0.0; 1 << self.n_qubits];
        for (&outcome, &count) in &self.map {
            p[outcome as usize] = count as f64 / total as f64;
        }
        p
    }
}

impl FromIterator<u64> for Counts {
    /// Collect outcomes into a histogram; the width is set to fit the
    /// largest outcome seen (use [`Counts::new`] + [`Counts::increment`] to
    /// fix the width explicitly).
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut c = Counts::new(0);
        for o in iter {
            c.increment(o);
            let width = 64 - o.leading_zeros() as u16;
            c.n_qubits = c.n_qubits.max(width.max(1));
        }
        c
    }
}

/// Everything a run produces: the histogram plus cost accounting.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Measurement histogram (one entry per leaf of the tree).
    pub counts: Counts,
    /// Primitive-operation tallies (feed to a
    /// [`tqsim_statevec::CostProfile`] for modeled time).
    pub ops: OpCounts,
    /// The tree that was executed.
    pub tree: TreeStructure,
    /// Maximum number of concurrently live state buffers. The serial
    /// [`TreeExecutor`] always uses exactly `k + 1`; the `tqsim-engine`
    /// parallel executor reports its *measured* pool high-water mark,
    /// which in practice stays within `2 · workers · (k + 1)` under
    /// stealing (each worker can have one chain pinned by thieves plus
    /// one active chain).
    pub peak_states: usize,
    /// Peak amplitude memory in bytes (same provenance as `peak_states`).
    pub peak_memory_bytes: usize,
    /// Measured wall-clock time.
    pub wall_time: Duration,
}

/// Execution options beyond the partition itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecOptions {
    /// Outcomes drawn per leaf (default 1, the paper's semantics). Values
    /// above 1 oversample each leaf state: `∏A_j · leaf_samples` outcomes
    /// for the same gate work — a cheap-throughput / correlated-samples
    /// trade the `ablation_dcp` harness quantifies. Oversampled leaves are
    /// drawn in one batched CDF walk ([`StateVector::sample_many`]).
    pub leaf_samples: u32,
    /// Replay each subcircuit's compiled fused plan (default) instead of
    /// dispatching gate by gate. The compiled path consumes the RNG stream
    /// identically — same trajectory branches, same `Counts` — while
    /// performing fewer amplitude passes (see [`OpCounts::amp_passes`]).
    /// The unfused path is kept as the bit-exact reference semantics.
    pub fusion: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            leaf_samples: 1,
            fusion: true,
        }
    }
}

/// Executes a partitioned noisy simulation, reusing intermediate states.
///
/// The executor walks the simulation tree depth-first keeping one state
/// buffer per level; a node at level `i` copies its parent's state
/// (charging one state copy), runs subcircuit `i` with fresh stochastic
/// noise, and hands the result to its `A_{i+1}` children. Leaves sample one
/// outcome each, so the run yields `∏ A_j` outcomes.
pub struct TreeExecutor<'a> {
    circuit: &'a Circuit,
    noise: &'a NoiseModel,
    partition: Partition,
    subcircuits: Vec<Circuit>,
    /// One fused plan per subcircuit, compiled **once** and replayed at
    /// every node of the tree (`∏_{j≤i} A_j` replays of plan `i`).
    compiled: Vec<CompiledCircuit>,
}

impl<'a> TreeExecutor<'a> {
    /// Bind a plan to a circuit and noise model.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::BadBoundaries`] if the partition does not cover
    /// exactly the circuit's gates.
    pub fn new(
        circuit: &'a Circuit,
        noise: &'a NoiseModel,
        partition: Partition,
    ) -> Result<Self, PlanError> {
        Self::with_fusion_config(circuit, noise, partition, FusionConfig::default())
    }

    /// [`TreeExecutor::new`] with an explicit fusion window for the
    /// per-subcircuit plans (`max_fuse_qubits: 3` enables `Mat8` clusters).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::BadBoundaries`] if the partition does not cover
    /// exactly the circuit's gates.
    pub fn with_fusion_config(
        circuit: &'a Circuit,
        noise: &'a NoiseModel,
        partition: Partition,
        fusion: FusionConfig,
    ) -> Result<Self, PlanError> {
        if partition.covered_gates() != circuit.len() {
            return Err(PlanError::BadBoundaries(format!(
                "partition covers {} gates, circuit has {}",
                partition.covered_gates(),
                circuit.len()
            )));
        }
        let subcircuits = partition.subcircuits(circuit);
        let compiled = subcircuits
            .iter()
            .map(|sc| noise.compile_with(sc, fusion))
            .collect();
        Ok(TreeExecutor {
            circuit,
            noise,
            partition,
            subcircuits,
            compiled,
        })
    }

    /// The plan being executed.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The per-subcircuit compiled fused plans (for inspection/benchmarks).
    pub fn compiled_plans(&self) -> &[CompiledCircuit] {
        &self.compiled
    }

    /// Execute the full tree with a deterministic seed.
    pub fn run(&self, seed: u64) -> RunResult {
        self.run_with_options(seed, ExecOptions::default())
    }

    /// Execute with explicit [`ExecOptions`].
    ///
    /// # Panics
    ///
    /// Panics if `options.leaf_samples == 0`.
    pub fn run_with_options(&self, seed: u64, options: ExecOptions) -> RunResult {
        assert!(
            options.leaf_samples >= 1,
            "need at least one sample per leaf"
        );
        let t0 = Instant::now();
        let n = self.circuit.n_qubits();
        let k = self.subcircuits.len();
        let mut counts = Counts::new(n);
        let mut ops = OpCounts::new();
        let mut rng = StdRng::seed_from_u64(seed);

        // One live state per tree level (+ the root) — this is exactly the
        // "intermediate states in otherwise-unused memory" trade of §3.4.
        let backend = SingleNode;
        let mut states: Vec<StateVector> = (0..=k).map(|_| backend.allocate(n)).collect();
        ops.state_resets += 1;

        run_tree_nodes(
            &backend,
            &self.subcircuits,
            &self.compiled,
            &self.partition.tree,
            self.noise,
            &mut states,
            &mut counts,
            &mut ops,
            &mut rng,
            options,
        );

        let peak_states = k + 1;
        let peak_memory_bytes = peak_states * (16usize << n);
        RunResult {
            counts,
            ops,
            tree: self.partition.tree.clone(),
            peak_states,
            peak_memory_bytes,
            wall_time: t0.elapsed(),
        }
    }
}

/// Walk one partitioned simulation tree depth-first on any pooled backend —
/// the **single** serial tree-walk implementation, shared by the
/// single-node [`TreeExecutor`] and `tqsim-cluster`'s distributed runner
/// (whose bespoke recursion this replaced).
///
/// `states` holds one preallocated state per tree level plus the root
/// (`k + 1` entries for a `k`-subcircuit partition); `states[0]` must be
/// `|0…0⟩`. Each node copies its parent's state through
/// [`PooledBackend::copy_into`] (node-local slice copies on distributed
/// backends — the contents never round-trip through a dense global
/// vector), replays its compiled subcircuit via [`run_subcircuit`] and
/// either samples ([`draw_leaf_outcomes`]) or recurses. One RNG is
/// threaded through the whole walk, so for a fixed seed the `Counts` are
/// bit-identical on every backend.
///
/// # Panics
///
/// Panics if `states` is shorter than `subcircuits.len() + 1` or
/// `options.leaf_samples == 0`.
#[allow(clippy::too_many_arguments)]
pub fn run_tree_nodes<B, R>(
    backend: &B,
    subcircuits: &[Circuit],
    compiled: &[CompiledCircuit],
    tree: &TreeStructure,
    noise: &NoiseModel,
    states: &mut [B::State],
    counts: &mut Counts,
    ops: &mut OpCounts,
    rng: &mut R,
    options: ExecOptions,
) where
    B: PooledBackend,
    R: rand::Rng + ?Sized,
{
    assert!(
        states.len() > subcircuits.len(),
        "need one state per tree level plus the root"
    );
    assert!(
        options.leaf_samples >= 1,
        "need at least one sample per leaf"
    );
    recurse_nodes(
        backend,
        subcircuits,
        compiled,
        tree,
        noise,
        0,
        states,
        counts,
        ops,
        rng,
        options,
        &[],
    );
}

#[allow(clippy::too_many_arguments)]
fn recurse_nodes<B, R>(
    backend: &B,
    subcircuits: &[Circuit],
    compiled: &[CompiledCircuit],
    tree: &TreeStructure,
    noise: &NoiseModel,
    level: usize,
    states: &mut [B::State],
    counts: &mut Counts,
    ops: &mut OpCounts,
    rng: &mut R,
    options: ExecOptions,
    tail: &[FusedOp],
) where
    B: PooledBackend,
    R: rand::Rng + ?Sized,
{
    let k = subcircuits.len();
    if level == k {
        let n = QuantumState::n_qubits(&states[k]);
        if !tail.is_empty() {
            ops.sample_fused += 1;
        }
        draw_leaf_outcomes_fused(
            &mut states[k],
            noise,
            n,
            options.leaf_samples,
            tail,
            rng,
            |outcome| {
                counts.increment(outcome);
                ops.samples += 1;
            },
        );
        return;
    }
    for _rep in 0..tree.arities()[level] {
        let plan = &compiled[level];
        let head: &[FusedOp] = if options.fusion { plan.head_ops() } else { &[] };
        let (parents, children) = states.split_at_mut(level + 1);
        let child = &mut children[0];
        backend.copy_into_apply(child, &parents[level], head);
        ops.state_copies += 1;
        if !head.is_empty() {
            ops.copy_apply += 1;
        }
        let next_tail = run_subcircuit_boundary(
            child,
            &subcircuits[level],
            plan,
            noise,
            rng,
            ops,
            options.fusion,
            level + 1 == k,
        );
        recurse_nodes(
            backend,
            subcircuits,
            compiled,
            tree,
            noise,
            level + 1,
            states,
            counts,
            ops,
            rng,
            options,
            &next_tail,
        );
    }
}

/// Execute one subcircuit on any [`QuantumState`] backend: the **single**
/// replay-driving implementation shared by the serial [`TreeExecutor`], the
/// `tqsim-engine` node executor, the Monte-Carlo baselines and
/// `tqsim-cluster`'s distributed runner.
///
/// With `fusion` on (the default everywhere) the compiled `plan` is
/// replayed with the noise-adaptive flush; otherwise each source gate is
/// dispatched and its noise applied per gate. Both arms consume the RNG
/// stream identically — the fused/unfused and cross-backend `Counts`
/// equivalences all rely on this function being the only fork point, so do
/// not duplicate the loop or change the draw order.
pub fn run_subcircuit<S, R>(
    state: &mut S,
    subcircuit: &Circuit,
    plan: &CompiledCircuit,
    noise: &NoiseModel,
    rng: &mut R,
    ops: &mut OpCounts,
    fusion: bool,
) where
    S: QuantumState + ?Sized,
    R: rand::Rng + ?Sized,
{
    if fusion {
        plan.replay(state, ops, |gate, ctx| {
            noise.apply_after_gate_deferred(gate, ctx, rng)
        });
    } else {
        for gate in subcircuit {
            state.apply_gate(gate);
            ops.add_gates(gate.arity(), 1);
            if !matches!(gate.kind(), GateKind::Id) {
                ops.amp_passes += 1;
            }
            ops.noise_ops += noise.apply_after_gate(state, gate, rng);
        }
    }
}

/// [`run_subcircuit`] with cross-boundary fusion: the plan's head window is
/// assumed already applied (it rode the parent→child copy through
/// [`PooledBackend::copy_into_apply`]), and with `want_tail` the trailing
/// fused window is **returned unapplied** so the caller can fold it into the
/// leaf sampling sweep ([`QuantumState::sample_fused`]). Pass
/// `want_tail: false` for non-leaf levels — their states get copied to
/// children and must be fully materialised.
///
/// The RNG stream is consumed identically to [`run_subcircuit`], so for a
/// fixed seed the `Counts` match the eager path.
#[allow(clippy::too_many_arguments)]
pub fn run_subcircuit_boundary<S, R>(
    state: &mut S,
    subcircuit: &Circuit,
    plan: &CompiledCircuit,
    noise: &NoiseModel,
    rng: &mut R,
    ops: &mut OpCounts,
    fusion: bool,
    want_tail: bool,
) -> Vec<FusedOp>
where
    S: QuantumState + ?Sized,
    R: rand::Rng + ?Sized,
{
    if fusion {
        plan.replay_boundary(
            state,
            ops,
            |gate, ctx| noise.apply_after_gate_deferred(gate, ctx, rng),
            want_tail,
        )
    } else {
        run_subcircuit(state, subcircuit, plan, noise, rng, ops, false);
        Vec::new()
    }
}

/// Draw `leaf_samples` readout-corrected outcomes from a leaf state,
/// feeding each to `sink`. A single draw walks the CDF directly;
/// oversampled leaves batch all uniforms into one
/// [`QuantumState::sample_many`] walk (uniforms first, then readout noise
/// per outcome in draw order).
///
/// This is the **single** leaf-sampling implementation: the serial
/// [`TreeExecutor`], the `tqsim-engine` node executor and the distributed
/// runner all call it, and their count equivalence relies on consuming the
/// RNG stream identically — do not fork the draw order.
pub fn draw_leaf_outcomes<S, R>(
    state: &S,
    noise: &NoiseModel,
    n_qubits: u16,
    leaf_samples: u32,
    rng: &mut R,
    mut sink: impl FnMut(u64),
) where
    S: QuantumState + ?Sized,
    R: rand::Rng + ?Sized,
{
    if leaf_samples == 1 {
        let outcome = state.sample_with(rand::RngExt::random(rng));
        sink(noise.apply_readout(outcome, n_qubits, rng));
        return;
    }
    let us: Vec<f64> = (0..leaf_samples)
        .map(|_| rand::RngExt::random(rng))
        .collect();
    for outcome in state.sample_many(&us) {
        sink(noise.apply_readout(outcome, n_qubits, rng));
    }
}

/// [`draw_leaf_outcomes`] with a pending fused `tail` window: the window is
/// applied in the **same sweep** that reads `|ψ|²`
/// ([`QuantumState::sample_fused`]), saving one full amplitude pass per
/// deferred op. With an empty tail this is exactly [`draw_leaf_outcomes`];
/// either way the RNG stream (uniforms first, then readout noise per
/// outcome) is consumed identically, preserving `Counts` equivalence.
pub fn draw_leaf_outcomes_fused<S, R>(
    state: &mut S,
    noise: &NoiseModel,
    n_qubits: u16,
    leaf_samples: u32,
    tail: &[FusedOp],
    rng: &mut R,
    mut sink: impl FnMut(u64),
) where
    S: QuantumState + ?Sized,
    R: rand::Rng + ?Sized,
{
    if tail.is_empty() {
        return draw_leaf_outcomes(state, noise, n_qubits, leaf_samples, rng, sink);
    }
    if leaf_samples == 1 {
        let u = rand::RngExt::random(rng);
        let outcome = state.sample_fused(tail, &[u])[0];
        sink(noise.apply_readout(outcome, n_qubits, rng));
        return;
    }
    let us: Vec<f64> = (0..leaf_samples)
        .map(|_| rand::RngExt::random(rng))
        .collect();
    for outcome in state.sample_fused(tail, &us) {
        sink(noise.apply_readout(outcome, n_qubits, rng));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcp::DcpConfig;
    use crate::partition::Strategy;
    use tqsim_circuit::generators;

    fn run(
        circuit: &Circuit,
        noise: &NoiseModel,
        strat: &Strategy,
        shots: u64,
        seed: u64,
    ) -> RunResult {
        let p = strat.plan(circuit, noise, shots).unwrap();
        TreeExecutor::new(circuit, noise, p).unwrap().run(seed)
    }

    #[test]
    fn outcome_count_equals_tree_product() {
        let c = generators::qft(6);
        let noise = NoiseModel::sycamore();
        let r = run(
            &c,
            &noise,
            &Strategy::Custom {
                arities: vec![5, 3, 2],
            },
            30,
            1,
        );
        assert_eq!(r.counts.total(), 30);
        assert_eq!(r.tree.to_string(), "(5,3,2)");
        assert_eq!(r.peak_states, 4);
    }

    #[test]
    fn op_accounting_matches_tree_math() {
        let c = generators::qft(6); // uniform-split friendly
        let noise = NoiseModel::ideal();
        let r = run(
            &c,
            &noise,
            &Strategy::Custom {
                arities: vec![4, 2],
            },
            8,
            3,
        );
        // Copies = subcircuit executions = 4 + 8 = 12.
        assert_eq!(r.ops.state_copies, 12);
        assert_eq!(r.ops.samples, 8);
        // Gates: instances-weighted subcircuit lengths.
        let lens = [c.len() / 2, c.len() - c.len() / 2];
        let expect = 4 * lens[0] as u64 + 8 * lens[1] as u64;
        assert_eq!(r.ops.total_gates(), expect);
        assert_eq!(r.ops.noise_ops, 0, "ideal model injects nothing");
    }

    #[test]
    fn deterministic_given_seed() {
        let c = generators::qv(6, 2);
        let noise = NoiseModel::sycamore();
        let a = run(
            &c,
            &noise,
            &Strategy::Dynamic(DcpConfig::default()),
            100,
            42,
        );
        let b = run(
            &c,
            &noise,
            &Strategy::Dynamic(DcpConfig::default()),
            100,
            42,
        );
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.ops, b.ops);
        let c2 = run(
            &c,
            &noise,
            &Strategy::Dynamic(DcpConfig::default()),
            100,
            43,
        );
        assert_ne!(a.counts, c2.counts, "different seed should differ");
    }

    #[test]
    fn noiseless_baseline_reproduces_ideal_distribution() {
        // With an ideal model every leaf samples the exact final state.
        let c = generators::bv(8);
        let noise = NoiseModel::ideal();
        let r = run(&c, &noise, &Strategy::Baseline, 400, 9);
        // BV secret (data bits 1..6 set) must appear in every outcome's
        // data-bit projection.
        let secret: u64 = 0b111_1110;
        for (outcome, _) in r.counts.iter() {
            assert_eq!(outcome & 0x7f, secret, "outcome {outcome:#b}");
        }
    }

    #[test]
    fn tree_and_baseline_agree_statistically() {
        // Chebyshev-style check on the all-important first moment: the
        // probability of the dominant BV outcome under light noise must
        // agree between baseline and TQSim within sampling error.
        let c = generators::bv(8);
        let noise = NoiseModel::sycamore();
        let shots = 2000u64;
        let base = run(&c, &noise, &Strategy::Baseline, shots, 7);
        let tqs = run(
            &c,
            &noise,
            &Strategy::Custom {
                arities: vec![100, 20],
            },
            shots,
            8,
        );
        let secret: u64 = 0b111_1110;
        let pb = (0..2u64)
            .map(|anc| base.counts.get(secret | (anc << 7)))
            .sum::<u64>() as f64
            / base.counts.total() as f64;
        let pt = (0..2u64)
            .map(|anc| tqs.counts.get(secret | (anc << 7)))
            .sum::<u64>() as f64
            / tqs.counts.total() as f64;
        assert!((pb - pt).abs() < 0.05, "baseline {pb:.3} vs tqsim {pt:.3}");
        assert!(
            pb > 0.8,
            "light noise should mostly preserve the secret, got {pb}"
        );
    }

    #[test]
    fn mismatched_partition_rejected() {
        let c = generators::bv(6);
        let noise = NoiseModel::ideal();
        let p = Partition::baseline(c.len() + 5, 10).unwrap();
        assert!(TreeExecutor::new(&c, &noise, p).is_err());
    }

    #[test]
    fn counts_distribution_normalises() {
        let mut counts = Counts::new(2);
        counts.increment(0);
        counts.increment(0);
        counts.increment(3);
        let d = counts.to_distribution();
        assert!((d[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((d[3] - 1.0 / 3.0).abs() < 1e-12);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fused_replay_matches_unfused_counts_bit_for_bit() {
        // The compiled-plan path must consume the RNG stream identically to
        // per-gate dispatch, so the histograms agree exactly — under noise,
        // where the noise-adaptive flush is exercised, and without. The
        // heavy depolarizing model fires branches constantly, checking that
        // noise-only sweeps stay out of amp_passes (which the unfused path
        // never counts either) and the pass reduction survives.
        for noise in [
            NoiseModel::sycamore(),
            NoiseModel::ideal(),
            NoiseModel::depolarizing(0.25, 0.35),
        ] {
            for (gen, shots) in [
                (generators::bv(8), 60u64),
                (generators::qft(7), 60),
                (generators::qv(6, 2), 40),
            ] {
                let p = Strategy::Custom {
                    arities: vec![5, 4, 3],
                }
                .plan(&gen, &noise, shots)
                .unwrap();
                let exec = TreeExecutor::new(&gen, &noise, p).unwrap();
                for seed in [7u64, 1234] {
                    let fused = exec.run_with_options(seed, ExecOptions::default());
                    let unfused = exec.run_with_options(
                        seed,
                        ExecOptions {
                            fusion: false,
                            ..ExecOptions::default()
                        },
                    );
                    assert_eq!(fused.counts, unfused.counts, "{}", noise.name());
                    assert_eq!(fused.ops.total_gates(), unfused.ops.total_gates());
                    assert_eq!(fused.ops.noise_ops, unfused.ops.noise_ops);
                    assert_eq!(fused.ops.state_copies, unfused.ops.state_copies);
                    assert!(
                        fused.ops.amp_passes < unfused.ops.amp_passes,
                        "{}: fusion must reduce passes ({} vs {})",
                        noise.name(),
                        fused.ops.amp_passes,
                        unfused.ops.amp_passes
                    );
                    assert!(fused.ops.fused_gates > 0);
                }
            }
        }
    }

    #[test]
    fn leaf_oversampling_multiplies_outcomes() {
        let c = generators::qft(6);
        let noise = NoiseModel::sycamore();
        let p = Strategy::Custom {
            arities: vec![5, 2],
        }
        .plan(&c, &noise, 10)
        .unwrap();
        let exec = TreeExecutor::new(&c, &noise, p).unwrap();
        let r = exec.run_with_options(
            1,
            ExecOptions {
                leaf_samples: 4,
                ..ExecOptions::default()
            },
        );
        assert_eq!(r.counts.total(), 40);
        assert_eq!(r.ops.samples, 40);
        // Gate work unchanged vs leaf_samples = 1.
        let r1 = exec.run(1);
        assert_eq!(r.ops.total_gates(), r1.ops.total_gates());
    }

    #[test]
    fn counts_from_iterator() {
        let counts: Counts = [1u64, 1, 5, 7].into_iter().collect();
        assert_eq!(counts.get(1), 2);
        assert_eq!(counts.total(), 4);
        assert!(counts.n_qubits() >= 3);
    }
}
