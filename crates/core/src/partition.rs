//! Circuit partitions and the planning strategies (UCP, XCP, DCP, custom).

use crate::dcp::{plan_dcp, DcpConfig};
use crate::tree::TreeStructure;
use std::fmt;
use tqsim_circuit::Circuit;
use tqsim_noise::NoiseModel;

/// A concrete execution plan: where the circuit splits and the tree shape.
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    /// `k + 1` gate-index boundaries: `0 = b_0 < b_1 < … < b_k = len`.
    boundaries: Vec<usize>,
    /// Tree shape with one arity per subcircuit.
    pub tree: TreeStructure,
}

/// Error from partition planning or construction.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// The circuit has no gates.
    EmptyCircuit,
    /// Zero shots requested.
    ZeroShots,
    /// Boundaries are not strictly increasing from 0, or disagree with the
    /// tree depth.
    BadBoundaries(String),
    /// Invalid configuration parameters.
    BadConfig(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::EmptyCircuit => f.write_str("circuit has no gates"),
            PlanError::ZeroShots => f.write_str("at least one shot is required"),
            PlanError::BadBoundaries(s) => write!(f, "bad partition boundaries: {s}"),
            PlanError::BadConfig(s) => write!(f, "bad configuration: {s}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl Partition {
    /// Build from explicit boundaries and a tree shape.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::BadBoundaries`] unless the boundaries start at
    /// 0, increase strictly, and count `tree.depth() + 1` entries.
    pub fn new(boundaries: Vec<usize>, tree: TreeStructure) -> Result<Self, PlanError> {
        if boundaries.len() != tree.depth() + 1 {
            return Err(PlanError::BadBoundaries(format!(
                "{} boundaries for tree depth {}",
                boundaries.len(),
                tree.depth()
            )));
        }
        if boundaries[0] != 0 {
            return Err(PlanError::BadBoundaries("must start at gate 0".into()));
        }
        if !boundaries.windows(2).all(|w| w[0] < w[1]) {
            return Err(PlanError::BadBoundaries(format!(
                "not strictly increasing: {boundaries:?}"
            )));
        }
        Ok(Partition { boundaries, tree })
    }

    /// The baseline plan: one subcircuit spanning the whole circuit,
    /// executed `shots` times.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] for an empty circuit or zero shots.
    pub fn baseline(circuit_len: usize, shots: u64) -> Result<Self, PlanError> {
        if circuit_len == 0 {
            return Err(PlanError::EmptyCircuit);
        }
        if shots == 0 {
            return Err(PlanError::ZeroShots);
        }
        Partition::new(vec![0, circuit_len], TreeStructure::baseline(shots))
    }

    /// Number of subcircuits.
    pub fn k(&self) -> usize {
        self.tree.depth()
    }

    /// The boundary list (`k + 1` gate indices).
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }

    /// Gate count of each subcircuit.
    pub fn lengths(&self) -> Vec<usize> {
        self.boundaries.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Total gates covered (must equal the circuit length it was planned
    /// for).
    pub fn covered_gates(&self) -> usize {
        *self.boundaries.last().expect("non-empty boundaries")
    }

    /// Materialise the subcircuits of `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover exactly `circuit.len()` gates.
    pub fn subcircuits(&self, circuit: &Circuit) -> Vec<Circuit> {
        assert_eq!(
            self.covered_gates(),
            circuit.len(),
            "partition covers {} gates but circuit has {}",
            self.covered_gates(),
            circuit.len()
        );
        self.boundaries
            .windows(2)
            .map(|w| circuit.slice(w[0]..w[1]))
            .collect()
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} over gates {:?}", self.tree, self.lengths())
    }
}

/// A partition-planning strategy.
#[derive(Clone, Debug, PartialEq)]
pub enum Strategy {
    /// No reuse: the flat Monte-Carlo baseline `(N)`.
    Baseline,
    /// Uniform Circuit Partition: `k` equal subcircuits, equal arities
    /// (§3.2.1, e.g. `(10,10,10)` for 1000 shots).
    Uniform {
        /// Number of subcircuits.
        k: usize,
    },
    /// Exponential Circuit Partition: arities halve level-to-level
    /// (§3.2.1, e.g. `(20,10,5)` for 1000 shots).
    Exponential {
        /// Number of subcircuits.
        k: usize,
    },
    /// Dynamic Circuit Partition (the paper's contribution, §3.2.2-§3.2.4).
    Dynamic(DcpConfig),
    /// Explicit arities with an equal-gate-count split (used by the Fig. 17
    /// trade-off study, e.g. `250-2-2`).
    Custom {
        /// Arity per subcircuit.
        arities: Vec<u64>,
    },
}

impl Strategy {
    /// Plan a partition of `circuit` for `shots` shots under `noise`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] on empty circuits, zero shots, `k` larger than
    /// the gate count, or invalid custom arities.
    pub fn plan(
        &self,
        circuit: &Circuit,
        noise: &NoiseModel,
        shots: u64,
    ) -> Result<Partition, PlanError> {
        if circuit.is_empty() {
            return Err(PlanError::EmptyCircuit);
        }
        if shots == 0 {
            return Err(PlanError::ZeroShots);
        }
        match self {
            Strategy::Baseline => Partition::baseline(circuit.len(), shots),
            Strategy::Uniform { k } => {
                let arities = uniform_arities(*k, shots)?;
                equal_split(circuit.len(), arities)
            }
            Strategy::Exponential { k } => {
                let arities = exponential_arities(*k, shots)?;
                equal_split(circuit.len(), arities)
            }
            Strategy::Dynamic(cfg) => plan_dcp(circuit, noise, shots, cfg),
            Strategy::Custom { arities } => {
                let tree = TreeStructure::new(arities.clone())
                    .map_err(|e| PlanError::BadConfig(e.to_string()))?;
                equal_split_tree(circuit.len(), tree)
            }
        }
    }
}

/// UCP arities: `k` equal values whose product covers `shots`
/// (floor of the k-th root, bumped round-robin until `∏ ≥ shots`).
fn uniform_arities(k: usize, shots: u64) -> Result<Vec<u64>, PlanError> {
    if k == 0 {
        return Err(PlanError::BadConfig("k must be >= 1".into()));
    }
    let base = (shots as f64).powf(1.0 / k as f64).floor() as u64;
    let mut arities = vec![base.max(1); k];
    bump_until_covers(&mut arities, shots);
    Ok(arities)
}

/// XCP arities: geometric halving `A, A/2, A/4, …` with `∏ ≥ shots`.
fn exponential_arities(k: usize, shots: u64) -> Result<Vec<u64>, PlanError> {
    if k == 0 {
        return Err(PlanError::BadConfig("k must be >= 1".into()));
    }
    // Solve A^k / 2^{k(k-1)/2} = shots.
    let exponent = (k * (k - 1) / 2) as f64;
    let a0 = ((shots as f64) * 2f64.powf(exponent))
        .powf(1.0 / k as f64)
        .floor() as u64;
    let mut a0 = a0.max(1);
    loop {
        let arities: Vec<u64> = (0..k).map(|i| (a0 >> i).max(1)).collect();
        if arities.iter().product::<u64>() >= shots {
            return Ok(arities);
        }
        a0 += 1;
    }
}

fn bump_until_covers(arities: &mut [u64], shots: u64) {
    let mut idx = 0;
    while arities.iter().product::<u64>() < shots {
        arities[idx] += 1;
        idx = (idx + 1) % arities.len();
    }
}

fn equal_split(len: usize, arities: Vec<u64>) -> Result<Partition, PlanError> {
    let tree = TreeStructure::new(arities).map_err(|e| PlanError::BadConfig(e.to_string()))?;
    equal_split_tree(len, tree)
}

fn equal_split_tree(len: usize, tree: TreeStructure) -> Result<Partition, PlanError> {
    let k = tree.depth();
    if k > len {
        return Err(PlanError::BadBoundaries(format!(
            "{k} subcircuits for {len} gates"
        )));
    }
    let boundaries: Vec<usize> = (0..=k).map(|i| len * i / k).collect();
    Partition::new(boundaries, tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqsim_circuit::generators;
    use tqsim_noise::NoiseModel;

    #[test]
    fn ucp_paper_example() {
        // 1000 shots, 3 subcircuits → (10,10,10).
        let arities = uniform_arities(3, 1000).unwrap();
        assert_eq!(arities, vec![10, 10, 10]);
    }

    #[test]
    fn xcp_paper_example() {
        // 1000 shots, 3 subcircuits → (20,10,5).
        let arities = exponential_arities(3, 1000).unwrap();
        assert_eq!(arities, vec![20, 10, 5]);
    }

    #[test]
    fn ucp_covers_non_perfect_powers() {
        let arities = uniform_arities(3, 1001).unwrap();
        assert!(arities.iter().product::<u64>() >= 1001);
    }

    #[test]
    fn partition_validation() {
        let t = TreeStructure::new(vec![4, 2]).unwrap();
        assert!(Partition::new(vec![0, 3, 10], t.clone()).is_ok());
        assert!(
            Partition::new(vec![0, 10], t.clone()).is_err(),
            "depth mismatch"
        );
        assert!(
            Partition::new(vec![1, 3, 10], t.clone()).is_err(),
            "must start at 0"
        );
        assert!(
            Partition::new(vec![0, 5, 5], t).is_err(),
            "not strictly increasing"
        );
    }

    #[test]
    fn subcircuits_cover_whole_circuit() {
        let c = generators::qft(8);
        let noise = NoiseModel::sycamore();
        for strat in [
            Strategy::Baseline,
            Strategy::Uniform { k: 4 },
            Strategy::Exponential { k: 3 },
            Strategy::Dynamic(DcpConfig::default()),
            Strategy::Custom {
                arities: vec![50, 2, 2],
            },
        ] {
            let p = strat.plan(&c, &noise, 200).unwrap();
            let subs = p.subcircuits(&c);
            let total: usize = subs.iter().map(Circuit::len).sum();
            assert_eq!(total, c.len(), "{strat:?}");
            assert!(p.tree.outcomes() >= 200, "{strat:?}");
        }
    }

    #[test]
    fn custom_matches_fig17_structures() {
        let c = generators::qpe(8, 1.0 / 3.0); // the paper's QPE_9
        let noise = NoiseModel::sycamore();
        for spec in [
            "250-2-2", "20-10-5", "10-10-10", "5-10-20", "2-2-250", "250-1-1",
        ] {
            let tree: TreeStructure = spec.parse().unwrap();
            let strat = Strategy::Custom {
                arities: tree.arities().to_vec(),
            };
            let p = strat.plan(&c, &noise, 1000).unwrap();
            assert_eq!(p.k(), 3);
            assert_eq!(p.tree, tree);
        }
    }

    #[test]
    fn errors_are_reported() {
        let noise = NoiseModel::sycamore();
        let c = generators::bv(6);
        assert_eq!(
            Strategy::Baseline.plan(&Circuit::new(3), &noise, 10),
            Err(PlanError::EmptyCircuit)
        );
        assert_eq!(
            Strategy::Baseline.plan(&c, &noise, 0),
            Err(PlanError::ZeroShots)
        );
        assert!(Strategy::Uniform { k: 0 }.plan(&c, &noise, 10).is_err());
        assert!(Strategy::Custom { arities: vec![] }
            .plan(&c, &noise, 10)
            .is_err());
        // More subcircuits than gates.
        assert!(Strategy::Uniform { k: 100 }
            .plan(&c, &noise, 1 << 20)
            .is_err());
    }
}
