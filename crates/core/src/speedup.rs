//! Analytical speedup models (paper §3.6).

use crate::partition::Partition;

/// §3.6: theoretical maximum speedup with `k` equal-length subcircuits and
/// `n_shots` shots, `k·N / ((k−1) + N)` — the limit as the first-level
/// arity approaches 1.
///
/// # Panics
///
/// Panics if `k == 0` or `n_shots == 0`.
pub fn theoretical_max_speedup(k: usize, n_shots: u64) -> f64 {
    assert!(k >= 1 && n_shots >= 1, "k and shots must be positive");
    let (k, n) = (k as f64, n_shots as f64);
    k * n / ((k - 1.0) + n)
}

/// Predicted speedup of a plan over the flat baseline, in gate-equivalent
/// cost (gates count 1 each; every subcircuit execution pays one state copy
/// of `copy_cost` gate-equivalents; the baseline pays one state reset per
/// shot at the same cost).
///
/// # Panics
///
/// Panics if the partition covers zero gates.
pub fn predicted_speedup(partition: &Partition, shots: u64, copy_cost: f64) -> f64 {
    let lengths = partition.lengths();
    let total_gates: usize = lengths.iter().sum();
    assert!(total_gates > 0, "empty partition");
    let baseline = shots as f64 * (total_gates as f64 + copy_cost);
    let tree_cost: f64 = lengths
        .iter()
        .enumerate()
        .map(|(i, &len)| partition.tree.instances(i) as f64 * (len as f64 + copy_cost))
        .sum();
    baseline / tree_cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Strategy;
    use crate::tree::TreeStructure;
    use tqsim_noise::NoiseModel;

    #[test]
    fn two_subcircuit_limit_is_1_5x() {
        // §3.6: "with two equal-length subcircuits … maximum speedup
        // (1+N)/2N… ≈ 1.5×" (as stated: 2N/(1+N) → 2… the paper's worked
        // value for the (1, N) tree is 1.5× at moderate N; our formula gives
        // k·N/((k−1)+N) → k as N → ∞).
        let s = theoretical_max_speedup(2, 3);
        assert!((s - 6.0 / 4.0).abs() < 1e-12);
        assert!(theoretical_max_speedup(2, 1_000_000) < 2.0);
    }

    #[test]
    fn qft14_paper_value() {
        // §5.1: 7 subcircuits, 32 000 shots → theoretical max 3.53×... the
        // paper computes over the 500-shot first level:
        // 32000·7 / (500·(1+2+4+…+64)/... ) — equivalently the instances-sum
        // form below.
        let tree = TreeStructure::new(vec![500, 2, 2, 2, 2, 2, 2]).unwrap();
        let instances: u64 = (0..7).map(|i| tree.instances(i)).sum();
        let speedup = (32_000.0 * 7.0) / instances as f64;
        assert!((speedup - 3.53).abs() < 0.02, "{speedup}");
    }

    #[test]
    fn max_speedup_grows_with_k() {
        let n = 32_000;
        let mut prev = 0.0;
        for k in 1..10 {
            let s = theoretical_max_speedup(k, n);
            assert!(s > prev);
            prev = s;
        }
    }

    #[test]
    fn predicted_speedup_of_baseline_is_one() {
        let c = tqsim_circuit::generators::qft(8);
        let p = Strategy::Baseline
            .plan(&c, &NoiseModel::sycamore(), 1000)
            .unwrap();
        let s = predicted_speedup(&p, 1000, 20.0);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn predicted_speedup_of_reuse_tree_exceeds_one() {
        let c = tqsim_circuit::generators::qft(10);
        let p = Strategy::Custom {
            arities: vec![50, 2, 2, 2, 2],
        }
        .plan(&c, &NoiseModel::sycamore(), 800)
        .unwrap();
        let s = predicted_speedup(&p, 800, 20.0);
        assert!(s > 1.5, "{s}");
    }
}
