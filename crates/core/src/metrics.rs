//! Figures of merit: state fidelity (Eq. 8), normalized fidelity (Eq. 9),
//! and the MSE used by the Fig. 18 QAOA-landscape study.

use tqsim_circuit::Circuit;
use tqsim_statevec::StateVector;

/// Eq. 8: classical (Bhattacharyya-squared) state fidelity between two
/// outcome distributions, `F_s(P, Q) = (Σ_x √(P(x)·Q(x)))²`.
///
/// # Panics
///
/// Panics if the distributions have different lengths.
pub fn state_fidelity(p_ideal: &[f64], p_output: &[f64]) -> f64 {
    assert_eq!(
        p_ideal.len(),
        p_output.len(),
        "distribution length mismatch"
    );
    let s: f64 = p_ideal
        .iter()
        .zip(p_output.iter())
        .map(|(&p, &q)| (p.max(0.0) * q.max(0.0)).sqrt())
        .sum();
    s * s
}

/// `F_s(P_ideal, U)` for the uniform distribution `U` — the floor that
/// Eq. 9 subtracts so random output scores 0.
pub fn uniform_fidelity(p_ideal: &[f64]) -> f64 {
    let n = p_ideal.len() as f64;
    let uniform = 1.0 / n;
    let s: f64 = p_ideal.iter().map(|&p| (p.max(0.0) * uniform).sqrt()).sum();
    s * s
}

/// Eq. 9: normalized fidelity
/// `F = (F_s(P_ideal, P_out) − F_s(P_ideal, U)) / (1 − F_s(P_ideal, U))`.
///
/// Equals 1 when the output matches the ideal distribution, ~0 for uniform
/// noise, and can go slightly negative for adversarially bad output.
///
/// **Singular case.** When `P_ideal` *is* (numerically) the uniform
/// distribution — true for QFT applied to a computational-basis input —
/// Eq. 9's denominator vanishes and the metric is undefined. We then fall
/// back to the plain state fidelity `F_s` (Eq. 8). Both simulators being
/// compared are scored by the same rule, so difference plots (Figs. 14–17)
/// remain meaningful.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn normalized_fidelity(p_ideal: &[f64], p_output: &[f64]) -> f64 {
    let f = state_fidelity(p_ideal, p_output);
    let fu = uniform_fidelity(p_ideal);
    if 1.0 - fu < 1e-9 {
        return f;
    }
    (f - fu) / (1.0 - fu)
}

/// Mean squared error between two equal-length series (Fig. 18's landscape
/// comparison metric).
///
/// # Panics
///
/// Panics on length mismatch or empty input.
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series length mismatch");
    assert!(!a.is_empty(), "empty series");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        / a.len() as f64
}

/// The exact (noiseless) outcome distribution of a circuit, from one
/// state-vector pass — the `P_ideal` reference of Eq. 8/9.
pub fn ideal_distribution(circuit: &Circuit) -> Vec<f64> {
    let mut sv = StateVector::zero(circuit.n_qubits());
    sv.apply_circuit(circuit);
    sv.probabilities()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_unit_fidelity() {
        let p = vec![0.5, 0.25, 0.25, 0.0];
        assert!((state_fidelity(&p, &p) - 1.0).abs() < 1e-12);
        assert!((normalized_fidelity(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_distributions_have_zero_fidelity() {
        let p = vec![1.0, 0.0];
        let q = vec![0.0, 1.0];
        assert_eq!(state_fidelity(&p, &q), 0.0);
        assert!(
            normalized_fidelity(&p, &q) < 0.0,
            "worse than random scores negative"
        );
    }

    #[test]
    fn uniform_output_scores_zero_normalized() {
        // The problem Eq. 9 fixes: plain fidelity of uniform output is not 0.
        let p_ideal = vec![1.0, 0.0, 0.0, 0.0];
        let uniform = vec![0.25; 4];
        assert!(state_fidelity(&p_ideal, &uniform) > 0.2);
        assert!(normalized_fidelity(&p_ideal, &uniform).abs() < 1e-12);
    }

    #[test]
    fn normalized_fidelity_monotone_in_noise() {
        let p_ideal = vec![0.9, 0.1, 0.0, 0.0];
        let mix =
            |w: f64| -> Vec<f64> { p_ideal.iter().map(|&p| (1.0 - w) * p + w * 0.25).collect() };
        let f_low = normalized_fidelity(&p_ideal, &mix(0.1));
        let f_high = normalized_fidelity(&p_ideal, &mix(0.6));
        assert!(f_low > f_high, "{f_low} should exceed {f_high}");
    }

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((mse(&[0.0, 0.0], &[1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ideal_distribution_of_ghz() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let p = ideal_distribution(&c);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_ideal_falls_back_to_state_fidelity() {
        // QFT-on-basis-state territory: the Eq. 9 denominator vanishes.
        let u = vec![0.25; 4];
        assert!((normalized_fidelity(&u, &u) - 1.0).abs() < 1e-12);
        let skewed = vec![0.7, 0.1, 0.1, 0.1];
        let expect = state_fidelity(&u, &skewed);
        assert!((normalized_fidelity(&u, &skewed) - expect).abs() < 1e-12);
    }
}
