//! The [`Tqsim`] façade: a builder tying circuit, noise, shots, strategy and
//! seed together.

use crate::dcp::DcpConfig;
use crate::executor::{RunResult, TreeExecutor};
use crate::partition::{Partition, PlanError, Strategy};
use tqsim_circuit::Circuit;
use tqsim_noise::NoiseModel;

/// Builder for a TQSim run.
///
/// ```
/// use tqsim::{Strategy, Tqsim};
/// use tqsim_circuit::generators;
/// use tqsim_noise::NoiseModel;
///
/// let circuit = generators::qft(8);
/// let result = Tqsim::new(&circuit)
///     .noise(NoiseModel::sycamore())
///     .shots(500)
///     .strategy(Strategy::default_dcp())
///     .seed(7)
///     .run()?;
/// assert_eq!(result.counts.total(), result.tree.outcomes());
/// # Ok::<(), tqsim::PlanError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Tqsim<'a> {
    circuit: &'a Circuit,
    noise: NoiseModel,
    shots: u64,
    strategy: Strategy,
    seed: u64,
    parallelism: usize,
}

impl Strategy {
    /// DCP with default tunables — the recommended strategy.
    pub fn default_dcp() -> Strategy {
        Strategy::Dynamic(DcpConfig::default())
    }
}

impl<'a> Tqsim<'a> {
    /// Start a run description for `circuit` with defaults: Sycamore
    /// depolarizing noise, 1000 shots, DCP, seed 0.
    pub fn new(circuit: &'a Circuit) -> Self {
        Tqsim {
            circuit,
            noise: NoiseModel::sycamore(),
            shots: 1000,
            strategy: Strategy::default_dcp(),
            seed: 0,
            parallelism: 1,
        }
    }

    /// Set the noise model.
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Set the shot count `N` (the minimum number of outcomes produced).
    pub fn shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Set the partition strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set the RNG seed (runs are fully deterministic given a seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Request `n`-way parallel tree execution.
    ///
    /// This crate's own [`Tqsim::run`] executes serially regardless (the
    /// single-threaded reference semantics); the option is consumed by the
    /// `tqsim-engine` crate's `RunParallel::run_parallel`, which fans
    /// independent subtrees across an `n`-worker work-stealing pool (an
    /// explicit `Engine` uses its own pool size). Engine runs derive
    /// per-subtree RNG streams from the seed, so their output is identical
    /// at every parallelism level (but intentionally a different — equally
    /// valid — stream than this serial executor's single-RNG walk).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn parallelism(mut self, n: usize) -> Self {
        assert!(n >= 1, "parallelism must be at least 1");
        self.parallelism = n;
        self
    }

    /// The circuit under simulation.
    pub fn circuit_ref(&self) -> &'a Circuit {
        self.circuit
    }

    /// The configured noise model.
    pub fn noise_ref(&self) -> &NoiseModel {
        &self.noise
    }

    /// The configured shot count.
    pub fn shots_count(&self) -> u64 {
        self.shots
    }

    /// The configured strategy.
    pub fn strategy_ref(&self) -> &Strategy {
        &self.strategy
    }

    /// The configured RNG seed.
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// The configured parallelism degree (see [`Tqsim::parallelism`]).
    pub fn parallelism_degree(&self) -> usize {
        self.parallelism
    }

    /// Plan the partition without executing (for inspection/reporting).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] for unplannable inputs.
    pub fn plan(&self) -> Result<Partition, PlanError> {
        self.strategy.plan(self.circuit, &self.noise, self.shots)
    }

    /// Plan and execute.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] for unplannable inputs.
    pub fn run(&self) -> Result<RunResult, PlanError> {
        let partition = self.plan()?;
        Ok(TreeExecutor::new(self.circuit, &self.noise, partition)?.run(self.seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqsim_circuit::generators;

    #[test]
    fn builder_runs_end_to_end() {
        let c = generators::qft(6);
        let r = Tqsim::new(&c).shots(100).seed(3).run().unwrap();
        assert!(r.counts.total() >= 100);
        assert!(r.ops.total_gates() > 0);
    }

    #[test]
    fn baseline_vs_dcp_computation_reduction() {
        // The headline claim in microcosm: DCP must execute fewer gates
        // than the baseline for the same outcome count.
        // Shot count must comfortably exceed Eq. 5's A0 (~300 at default
        // margin) for DCP to beat the baseline; below that DCP correctly
        // falls back to the flat plan.
        let c = generators::qft(8);
        let base = Tqsim::new(&c)
            .shots(2000)
            .strategy(Strategy::Baseline)
            .seed(1)
            .run()
            .unwrap();
        let dcp = Tqsim::new(&c).shots(2000).seed(1).run().unwrap();
        assert!(
            dcp.ops.total_gates() < base.ops.total_gates(),
            "dcp {} >= baseline {}",
            dcp.ops.total_gates(),
            base.ops.total_gates()
        );
        assert!(dcp.counts.total() >= 2000);
        // Low-shot regime: DCP = baseline, not worse.
        let few = Tqsim::new(&c).shots(64).seed(1).plan().unwrap();
        assert_eq!(few.k(), 1, "expected baseline fallback, got {}", few.tree);
    }

    #[test]
    fn plan_only_does_not_execute() {
        let c = generators::qft(8);
        let p = Tqsim::new(&c).shots(1000).plan().unwrap();
        assert!(p.k() >= 2);
    }
}
