//! The simulation-tree structure notation `(A0, A1, …, A_{k−1})` of §3.1.

use std::fmt;
use std::str::FromStr;

/// A TQSim simulation-tree shape: `arities[i]` is the arity of every node at
/// depth `i` (= the number of times the state produced by subcircuit `i−1`
/// is reused as input to subcircuit `i`).
///
/// Key quantities (paper §3.1):
/// - instances of subcircuit `i` = `∏_{j ≤ i} A_j` ([`TreeStructure::instances`]);
/// - total outcomes = `∏_j A_j` ([`TreeStructure::outcomes`]);
/// - the baseline simulator is the degenerate tree `(N)` — equivalently
///   `(N, 1, …, 1)` — produced by [`TreeStructure::baseline`].
///
/// ```
/// use tqsim::tree::TreeStructure;
/// let t: TreeStructure = "(16,2,2)".parse().unwrap();
/// assert_eq!(t.outcomes(), 64);
/// assert_eq!(t.subcircuit_executions(), 16 + 32 + 64);
/// assert_eq!(t.to_string(), "(16,2,2)");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TreeStructure {
    arities: Vec<u64>,
}

/// Error constructing or parsing a [`TreeStructure`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// The arity list was empty.
    Empty,
    /// An arity of zero appeared.
    ZeroArity,
    /// Text form could not be parsed.
    Parse(String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Empty => f.write_str("tree needs at least one level"),
            TreeError::ZeroArity => f.write_str("arities must be >= 1"),
            TreeError::Parse(s) => write!(f, "cannot parse tree structure from {s:?}"),
        }
    }
}

impl std::error::Error for TreeError {}

impl TreeStructure {
    /// Build from an arity list.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError`] when the list is empty or contains a zero.
    pub fn new(arities: Vec<u64>) -> Result<Self, TreeError> {
        if arities.is_empty() {
            return Err(TreeError::Empty);
        }
        if arities.contains(&0) {
            return Err(TreeError::ZeroArity);
        }
        Ok(TreeStructure { arities })
    }

    /// The baseline tree `(shots)`: every shot re-executes the whole circuit.
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0`.
    pub fn baseline(shots: u64) -> Self {
        assert!(shots > 0, "need at least one shot");
        TreeStructure {
            arities: vec![shots],
        }
    }

    /// Per-level arities.
    pub fn arities(&self) -> &[u64] {
        &self.arities
    }

    /// Number of subcircuits `k`.
    pub fn depth(&self) -> usize {
        self.arities.len()
    }

    /// Instances of subcircuit `i`: `∏_{j ≤ i} A_j`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= depth`.
    pub fn instances(&self, i: usize) -> u64 {
        assert!(i < self.arities.len(), "level {i} out of range");
        self.arities[..=i].iter().product()
    }

    /// Total outcomes produced: `∏_j A_j`.
    pub fn outcomes(&self) -> u64 {
        self.arities.iter().product()
    }

    /// Total subcircuit executions: `Σ_i instances(i)` — the computation the
    /// paper counts as "nodes" (minus the initial-state root). Computed with
    /// a single prefix-product pass, O(k) rather than the O(k²) of summing
    /// [`TreeStructure::instances`] per level.
    pub fn subcircuit_executions(&self) -> u64 {
        self.arities
            .iter()
            .scan(1u64, |prod, &a| {
                *prod *= a;
                Some(*prod)
            })
            .sum()
    }

    /// Total node count including the initial-state root (Fig. 6/7 caption
    /// convention).
    pub fn total_nodes(&self) -> u64 {
        1 + self.subcircuit_executions()
    }
}

impl fmt::Display for TreeStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, a) in self.arities.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(")")
    }
}

impl FromStr for TreeStructure {
    type Err = TreeError;

    fn from_str(s: &str) -> Result<Self, TreeError> {
        let trimmed = s.trim().trim_start_matches('(').trim_end_matches(')');
        let arities: Result<Vec<u64>, _> = trimmed
            .split([',', '-'])
            .map(|part| part.trim().parse::<u64>())
            .collect();
        match arities {
            Ok(v) => TreeStructure::new(v).map_err(|_| TreeError::Parse(s.to_string())),
            Err(_) => Err(TreeError::Parse(s.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig6_baseline_counts() {
        // Baseline (64,1,1): 193 total nodes, 64 outcomes.
        let t = TreeStructure::new(vec![64, 1, 1]).unwrap();
        assert_eq!(t.total_nodes(), 193);
        assert_eq!(t.outcomes(), 64);
        assert_eq!(t.subcircuit_executions(), 64 * 3);
    }

    #[test]
    fn paper_fig7_dcp_counts() {
        // DCP (16,2,2): 113 total nodes, 64 outcomes.
        let t = TreeStructure::new(vec![16, 2, 2]).unwrap();
        assert_eq!(t.total_nodes(), 113);
        assert_eq!(t.outcomes(), 64);
        assert_eq!(t.instances(0), 16);
        assert_eq!(t.instances(1), 32);
        assert_eq!(t.instances(2), 64);
    }

    #[test]
    fn parse_both_notations() {
        // The paper writes both "(16,2,2)" and "250-2-2".
        let a: TreeStructure = "(250,2,2)".parse().unwrap();
        let b: TreeStructure = "250-2-2".parse().unwrap();
        assert_eq!(a, b);
        assert!("()".parse::<TreeStructure>().is_err());
        assert!("(1,x)".parse::<TreeStructure>().is_err());
    }

    #[test]
    fn rejects_invalid() {
        assert_eq!(TreeStructure::new(vec![]), Err(TreeError::Empty));
        assert_eq!(TreeStructure::new(vec![4, 0]), Err(TreeError::ZeroArity));
    }

    #[test]
    fn prefix_product_matches_per_level_instances() {
        let t = TreeStructure::new(vec![7, 1, 3, 2, 1, 5, 2, 2]).unwrap();
        let by_level: u64 = (0..t.depth()).map(|i| t.instances(i)).sum();
        assert_eq!(t.subcircuit_executions(), by_level);
    }

    #[test]
    fn display_roundtrip() {
        let t = TreeStructure::new(vec![500, 2, 2, 2, 2, 2, 2]).unwrap();
        let s = t.to_string();
        assert_eq!(s.parse::<TreeStructure>().unwrap(), t);
    }
}
