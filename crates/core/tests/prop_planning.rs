//! Property-based tests of the planning layer: tree arithmetic, DCP
//! invariants, and executor outcome accounting on randomised inputs.

use proptest::prelude::*;
use tqsim::{DcpConfig, Strategy, Tqsim, TreeStructure};
use tqsim_circuit::generators;
use tqsim_noise::NoiseModel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_arithmetic_is_consistent(arities in prop::collection::vec(1u64..20, 1..6)) {
        let tree = TreeStructure::new(arities.clone()).unwrap();
        // Outcomes = last-level instances.
        prop_assert_eq!(tree.outcomes(), tree.instances(tree.depth() - 1));
        // Executions = sum of instances; nodes = that + root.
        let execs: u64 = (0..tree.depth()).map(|i| tree.instances(i)).sum();
        prop_assert_eq!(tree.subcircuit_executions(), execs);
        prop_assert_eq!(tree.total_nodes(), execs + 1);
        // Instances are monotone non-decreasing level to level.
        for i in 1..tree.depth() {
            prop_assert!(tree.instances(i) >= tree.instances(i - 1));
        }
        // Round-trip through the display notation.
        let reparsed: TreeStructure = tree.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, tree);
    }

    #[test]
    fn dcp_invariants_hold_for_random_configurations(
        n in 6u16..12,
        shots in 200u64..20_000,
        copy_cost in 2.0f64..60.0,
        margin in 0.02f64..0.2,
    ) {
        let circuit = generators::qft(n);
        let noise = NoiseModel::sycamore();
        let cfg = DcpConfig { copy_cost, margin, ..DcpConfig::default() };
        let plan = Strategy::Dynamic(cfg).plan(&circuit, &noise, shots).unwrap();

        // 1. The plan covers the whole circuit with strictly increasing cuts.
        prop_assert_eq!(plan.covered_gates(), circuit.len());
        prop_assert!(plan.boundaries().windows(2).all(|w| w[0] < w[1]));
        // 2. The tree yields at least the requested shots.
        prop_assert!(plan.tree.outcomes() >= shots);
        // 3. Non-first arities are ≥ 2 whenever the plan actually partitions
        //    (reuse would otherwise be pointless — Eq. 6's constraint).
        if plan.k() > 1 {
            for &a in &plan.tree.arities()[1..] {
                prop_assert!(a >= 2, "tree {}", plan.tree);
            }
            // 4. Every subcircuit respects the minimum length rule.
            for len in plan.lengths() {
                prop_assert!(len >= copy_cost.ceil() as usize, "{:?}", plan.lengths());
            }
        }
    }

    #[test]
    fn ucp_and_xcp_cover_shots(k in 1usize..6, shots in 1u64..50_000) {
        let circuit = generators::qft(8); // 150 gates ≥ any k here
        let noise = NoiseModel::sycamore();
        for strat in [Strategy::Uniform { k }, Strategy::Exponential { k }] {
            let plan = strat.plan(&circuit, &noise, shots).unwrap();
            prop_assert!(plan.tree.outcomes() >= shots, "{:?}: {}", strat, plan.tree);
            prop_assert_eq!(plan.k(), k);
        }
    }

    #[test]
    fn xcp_arities_halve(k in 2usize..5, shots in 100u64..10_000) {
        let circuit = generators::qft(8);
        let noise = NoiseModel::sycamore();
        let plan = Strategy::Exponential { k }.plan(&circuit, &noise, shots).unwrap();
        let a = plan.tree.arities();
        for w in a.windows(2) {
            // Geometric halving with integer floors.
            prop_assert!(w[1] <= w[0], "{:?}", a);
            prop_assert!(w[1] >= w[0] / 2, "{:?}", a);
        }
    }

    #[test]
    fn executor_outcome_count_is_exact(
        arities in prop::collection::vec(1u64..5, 1..4),
        seed in 0u64..1000,
    ) {
        let circuit = generators::bv(6);
        prop_assume!(arities.len() <= circuit.len());
        let noise = NoiseModel::sycamore();
        let result = Tqsim::new(&circuit)
            .noise(noise)
            .shots(1) // overridden by the custom tree
            .strategy(Strategy::Custom { arities: arities.clone() })
            .seed(seed)
            .run()
            .unwrap();
        let expect: u64 = arities.iter().product();
        prop_assert_eq!(result.counts.total(), expect);
        // Copies = subcircuit executions.
        prop_assert_eq!(result.ops.state_copies, result.tree.subcircuit_executions());
    }

    #[test]
    fn sample_size_is_monotone(
        p1 in 0.01f64..0.49,
        delta in 0.0f64..0.4,
        shots in 100u64..100_000,
    ) {
        // Larger error rate (below 0.5) must never need fewer samples.
        let a = tqsim::dcp::sample_size(1.96, 0.03, p1, shots);
        let b = tqsim::dcp::sample_size(1.96, 0.03, (p1 + delta).min(0.5), shots);
        prop_assert!(b >= a, "p={p1} -> {a}, p={} -> {b}", (p1 + delta).min(0.5));
        // And it never exceeds the population.
        prop_assert!(b <= shots);
    }
}

#[test]
fn dcp_is_noise_sensitive() {
    // Higher error rates must not shrink A0 (more noise → more first-level
    // diversity required).
    let circuit = generators::qft(12);
    let quiet = NoiseModel::depolarizing(0.0001, 0.0015);
    let loud = NoiseModel::depolarizing(0.01, 0.15);
    let cfg = DcpConfig::default();
    let a_quiet = Strategy::Dynamic(cfg)
        .plan(&circuit, &quiet, 32_000)
        .unwrap();
    let a_loud = Strategy::Dynamic(cfg)
        .plan(&circuit, &loud, 32_000)
        .unwrap();
    assert!(
        a_loud.tree.arities()[0] >= a_quiet.tree.arities()[0],
        "quiet {} vs loud {}",
        a_quiet.tree,
        a_loud.tree
    );
}
