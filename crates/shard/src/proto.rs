//! Wire protocol shared by the shard coordinator and its worker processes.
//!
//! Two planes, two encodings:
//!
//! * **Control plane** — one line-delimited JSON object per verb, built on
//!   the shared [`tqsim_json`] codec (the exact idiom of `tqsim-service`'s
//!   wire module). Every message is an object with a `"v"` verb field;
//!   *silent* verbs (local kernel applications) get no reply so the
//!   coordinator can pipeline them, *acked* verbs (anything involving the
//!   worker mesh, allocation, shutdown) reply `{"ok":true}`, and *queries*
//!   reply a result object.
//! * **Data plane** — length-prefixed little-endian binary frames of
//!   complex amplitudes: an 8-byte LE byte count followed by `f64` re/im
//!   pairs. Used on the worker↔worker mesh for distributed-swap halves and
//!   on the control socket for bulk slice fetches.
//!
//! Floating-point values on the JSON plane round-trip exactly: the writer
//! emits the shortest decimal that parses back to the same bits, which is
//! what lets the multi-process backend stay bit-identical to the
//! in-process one.

use std::io::{self, BufRead, Read, Write};
use tqsim_circuit::math::{c64, Mat16, Mat2, Mat32, Mat4, Mat8, C64};
use tqsim_circuit::{Gate, GateKind};
use tqsim_json::{num, num_u64, obj, str_val, Value};
use tqsim_statevec::{DiagRun, FusedOp};

// ------------------------------------------------------------ line plane

/// Write one control message: `value` as a single JSON line, flushed.
///
/// # Errors
///
/// Propagates transport errors.
pub fn send_line<W: Write>(w: &mut W, value: &Value) -> io::Result<()> {
    let mut text = value.to_json();
    text.push('\n');
    w.write_all(text.as_bytes())?;
    w.flush()
}

/// Read one control message (a JSON line). EOF before a full line is an
/// [`io::ErrorKind::UnexpectedEof`] — a peer vanished mid-protocol.
///
/// # Errors
///
/// Transport errors, EOF, or a malformed JSON line
/// ([`io::ErrorKind::InvalidData`]).
pub fn recv_line<R: BufRead>(r: &mut R) -> io::Result<Value> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "shard peer closed the connection",
        ));
    }
    tqsim_json::parse(line.trim_end()).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed shard control line: {e}"),
        )
    })
}

/// The canonical `{"ok":true}` acknowledgement.
pub fn ack() -> Value {
    obj(vec![("ok", Value::Bool(true))])
}

// ---------------------------------------------------------- binary plane

/// Write `amps` as one length-prefixed binary frame (8-byte LE byte
/// count, then `f64` LE re/im pairs).
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_amps<W: Write>(w: &mut W, amps: &[C64]) -> io::Result<()> {
    let bytes = (amps.len() * 16) as u64;
    w.write_all(&bytes.to_le_bytes())?;
    let mut buf = Vec::with_capacity(amps.len() * 16);
    for a in amps {
        buf.extend_from_slice(&a.re.to_le_bytes());
        buf.extend_from_slice(&a.im.to_le_bytes());
    }
    w.write_all(&buf)?;
    w.flush()
}

/// Read one binary amplitude frame written by [`write_amps`].
///
/// # Errors
///
/// Transport errors, or a frame whose byte count is not a multiple of 16.
pub fn read_amps<R: Read>(r: &mut R) -> io::Result<Vec<C64>> {
    let mut len = [0u8; 8];
    r.read_exact(&mut len)?;
    let bytes = u64::from_le_bytes(len) as usize;
    if !bytes.is_multiple_of(16) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "amplitude frame length is not a multiple of 16",
        ));
    }
    let mut buf = vec![0u8; bytes];
    r.read_exact(&mut buf)?;
    let mut amps = Vec::with_capacity(bytes / 16);
    for chunk in buf.chunks_exact(16) {
        let re = f64::from_le_bytes(chunk[..8].try_into().expect("8-byte chunk"));
        let im = f64::from_le_bytes(chunk[8..].try_into().expect("8-byte chunk"));
        amps.push(c64(re, im));
    }
    Ok(amps)
}

// ------------------------------------------------------------ gate codec

/// Per-mnemonic decode table: `(params, arity)` — the same shapes as the
/// service wire protocol, so one mnemonic set covers both protocols.
fn gate_shape(name: &str) -> Option<(usize, usize)> {
    Some(match name {
        "id" | "x" | "y" | "z" | "h" | "s" | "sdg" | "t" | "tdg" | "sx" | "sy" | "sw" => (0, 1),
        "rx" | "ry" | "rz" | "p" => (1, 1),
        "u3" => (3, 1),
        "u1q" => (8, 1),
        "cx" | "cz" | "swap" => (0, 2),
        "cp" | "rzz" => (1, 2),
        "fsim" => (2, 2),
        "u2q" => (32, 2),
        "ccx" => (0, 3),
        _ => return None,
    })
}

fn gate_kind(name: &str, params: &[f64]) -> Option<GateKind> {
    Some(match name {
        "id" => GateKind::Id,
        "x" => GateKind::X,
        "y" => GateKind::Y,
        "z" => GateKind::Z,
        "h" => GateKind::H,
        "s" => GateKind::S,
        "sdg" => GateKind::Sdg,
        "t" => GateKind::T,
        "tdg" => GateKind::Tdg,
        "sx" => GateKind::Sx,
        "sy" => GateKind::Sy,
        "sw" => GateKind::Sw,
        "rx" => GateKind::Rx(params[0]),
        "ry" => GateKind::Ry(params[0]),
        "rz" => GateKind::Rz(params[0]),
        "p" => GateKind::Phase(params[0]),
        "u3" => GateKind::U3(params[0], params[1], params[2]),
        "u1q" => {
            let e = |i: usize| c64(params[2 * i], params[2 * i + 1]);
            GateKind::Unitary1(Mat2([[e(0), e(1)], [e(2), e(3)]]))
        }
        "cx" => GateKind::Cx,
        "cz" => GateKind::Cz,
        "swap" => GateKind::Swap,
        "cp" => GateKind::CPhase(params[0]),
        "rzz" => GateKind::Rzz(params[0]),
        "fsim" => GateKind::FSim(params[0], params[1]),
        "u2q" => {
            let e = |i: usize| c64(params[2 * i], params[2 * i + 1]);
            let mut m = [[c64(0.0, 0.0); 4]; 4];
            for (r, row) in m.iter_mut().enumerate() {
                for (c_idx, cell) in row.iter_mut().enumerate() {
                    *cell = e(r * 4 + c_idx);
                }
            }
            GateKind::Unitary2(Mat4(m))
        }
        "ccx" => GateKind::Ccx,
        _ => return None,
    })
}

/// Encode a gate as `[name, params…, qubits…]`.
pub fn gate_to_value(gate: &Gate) -> Value {
    let mut cells = vec![str_val(gate.kind().name())];
    cells.extend(gate.kind().params().into_iter().map(num));
    cells.extend(gate.qubits().iter().map(|&q| num_u64(u64::from(q))));
    Value::Arr(cells)
}

/// Decode a gate (see [`gate_to_value`]).
///
/// # Errors
///
/// A human-readable message for malformed input.
pub fn gate_from_value(value: &Value) -> Result<Gate, String> {
    let parts = value.as_arr().ok_or("gate is not an array")?;
    let name = parts
        .first()
        .and_then(Value::as_str)
        .ok_or("gate lacks a name")?;
    let (n_params, arity) = gate_shape(name).ok_or_else(|| format!("unknown mnemonic {name:?}"))?;
    if parts.len() != 1 + n_params + arity {
        return Err(format!(
            "gate {name}: expected {n_params} params + {arity} qubits, got {} cells",
            parts.len() - 1
        ));
    }
    let params: Vec<f64> = parts[1..1 + n_params]
        .iter()
        .map(|v| v.as_f64().ok_or_else(|| format!("gate {name}: bad param")))
        .collect::<Result<_, _>>()?;
    let qubits: Vec<u16> = parts[1 + n_params..]
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|q| u16::try_from(q).ok())
                .ok_or_else(|| format!("gate {name}: bad qubit"))
        })
        .collect::<Result<_, _>>()?;
    let kind = gate_kind(name, &params).expect("shape-checked mnemonic");
    Ok(Gate::new(kind, &qubits))
}

// ---------------------------------------------------------- matrix codec

/// Encode complex values as a flat `[re, im, re, im, …]` array.
pub fn c64s_to_value<'a>(xs: impl IntoIterator<Item = &'a C64>) -> Value {
    let mut cells = Vec::new();
    for x in xs {
        cells.push(num(x.re));
        cells.push(num(x.im));
    }
    Value::Arr(cells)
}

/// Decode a flat `[re, im, …]` array of expected complex length `n`.
///
/// # Errors
///
/// A human-readable message for malformed input.
pub fn c64s_from_value(value: &Value, n: usize) -> Result<Vec<C64>, String> {
    let cells = value.as_arr().ok_or("complex list is not an array")?;
    if cells.len() != 2 * n {
        return Err(format!(
            "expected {n} complex values, got {} cells",
            cells.len()
        ));
    }
    cells
        .chunks_exact(2)
        .map(|p| match (p[0].as_f64(), p[1].as_f64()) {
            (Some(re), Some(im)) => Ok(c64(re, im)),
            _ => Err("non-numeric complex component".to_string()),
        })
        .collect()
}

/// Encode a dense 2×2 matrix (row-major flat complex list).
pub fn mat2_to_value(m: &Mat2) -> Value {
    c64s_to_value(m.0.iter().flatten())
}

/// Decode a dense 2×2 matrix.
///
/// # Errors
///
/// A human-readable message for malformed input.
pub fn mat2_from_value(value: &Value) -> Result<Mat2, String> {
    let v = c64s_from_value(value, 4)?;
    Ok(Mat2([[v[0], v[1]], [v[2], v[3]]]))
}

/// Encode a dense 4×4 matrix (row-major flat complex list).
pub fn mat4_to_value(m: &Mat4) -> Value {
    c64s_to_value(m.0.iter().flatten())
}

/// Decode a dense 4×4 matrix.
///
/// # Errors
///
/// A human-readable message for malformed input.
pub fn mat4_from_value(value: &Value) -> Result<Mat4, String> {
    let v = c64s_from_value(value, 16)?;
    let mut m = [[c64(0.0, 0.0); 4]; 4];
    for (r, row) in m.iter_mut().enumerate() {
        row.copy_from_slice(&v[r * 4..r * 4 + 4]);
    }
    Ok(Mat4(m))
}

/// Encode a dense 8×8 matrix (row-major flat complex list).
pub fn mat8_to_value(m: &Mat8) -> Value {
    c64s_to_value(m.0.iter().flatten())
}

/// Decode a dense 8×8 matrix.
///
/// # Errors
///
/// A human-readable message for malformed input.
pub fn mat8_from_value(value: &Value) -> Result<Mat8, String> {
    let v = c64s_from_value(value, 64)?;
    let mut m = [[c64(0.0, 0.0); 8]; 8];
    for (r, row) in m.iter_mut().enumerate() {
        row.copy_from_slice(&v[r * 8..r * 8 + 8]);
    }
    Ok(Mat8(m))
}

/// Encode a dense 16×16 matrix (row-major flat complex list).
pub fn mat16_to_value(m: &Mat16) -> Value {
    c64s_to_value(m.0.iter().flatten())
}

/// Decode a dense 16×16 matrix.
///
/// # Errors
///
/// A human-readable message for malformed input.
pub fn mat16_from_value(value: &Value) -> Result<Mat16, String> {
    let v = c64s_from_value(value, 256)?;
    let mut m = Mat16::default();
    for (r, row) in m.0.iter_mut().enumerate() {
        row.copy_from_slice(&v[r * 16..r * 16 + 16]);
    }
    Ok(m)
}

/// Encode a dense 32×32 matrix (row-major flat complex list).
pub fn mat32_to_value(m: &Mat32) -> Value {
    c64s_to_value(m.0.iter().flatten())
}

/// Decode a dense 32×32 matrix.
///
/// # Errors
///
/// A human-readable message for malformed input.
pub fn mat32_from_value(value: &Value) -> Result<Mat32, String> {
    let v = c64s_from_value(value, 1024)?;
    let mut m = Mat32::default();
    for (r, row) in m.0.iter_mut().enumerate() {
        row.copy_from_slice(&v[r * 32..r * 32 + 32]);
    }
    Ok(m)
}

/// Encode a coalesced diagonal run as
/// `{"t1":[[q, re0, im0, re1, im1], …], "t2":[[qh, ql, re0 … im3], …]}`.
pub fn diag_run_to_value(run: &DiagRun) -> Value {
    let t1 = run
        .terms1()
        .iter()
        .map(|(q, d)| {
            let mut cells = vec![num_u64(u64::from(*q))];
            for x in d {
                cells.push(num(x.re));
                cells.push(num(x.im));
            }
            Value::Arr(cells)
        })
        .collect();
    let t2 = run
        .terms2()
        .iter()
        .map(|(qh, ql, d)| {
            let mut cells = vec![num_u64(u64::from(*qh)), num_u64(u64::from(*ql))];
            for x in d {
                cells.push(num(x.re));
                cells.push(num(x.im));
            }
            Value::Arr(cells)
        })
        .collect();
    obj(vec![("t1", Value::Arr(t1)), ("t2", Value::Arr(t2))])
}

/// Decode a diagonal run (see [`diag_run_to_value`]).
///
/// # Errors
///
/// A human-readable message for malformed input.
pub fn diag_run_from_value(value: &Value) -> Result<DiagRun, String> {
    let q_of = |v: &Value| {
        v.as_u64()
            .and_then(|q| u16::try_from(q).ok())
            .ok_or("bad diag-run qubit".to_string())
    };
    let mut run = DiagRun::new();
    for term in value
        .get("t1")
        .and_then(Value::as_arr)
        .ok_or("diag run needs \"t1\"")?
    {
        let cells = term.as_arr().ok_or("bad t1 term")?;
        if cells.len() != 5 {
            return Err("bad t1 term length".to_string());
        }
        let d = c64s_from_value(&Value::Arr(cells[1..].to_vec()), 2)?;
        run.push1(q_of(&cells[0])?, [d[0], d[1]]);
    }
    for term in value
        .get("t2")
        .and_then(Value::as_arr)
        .ok_or("diag run needs \"t2\"")?
    {
        let cells = term.as_arr().ok_or("bad t2 term")?;
        if cells.len() != 10 {
            return Err("bad t2 term length".to_string());
        }
        let d = c64s_from_value(&Value::Arr(cells[2..].to_vec()), 4)?;
        run.push2(q_of(&cells[0])?, q_of(&cells[1])?, [d[0], d[1], d[2], d[3]]);
    }
    Ok(run)
}

// ---------------------------------------------------------- window codec

/// Encode a fused-op window (a plan head or tail) as an array of tagged op
/// objects. Pristine single-gate ops (`src` present) are sent as their
/// source gate so the worker replays them through the same specialised
/// kernel the single-node [`tqsim_statevec::apply_window_amps`] uses —
/// bit-identical application by construction.
pub fn window_to_value(window: &[FusedOp]) -> Value {
    let ops = window
        .iter()
        .map(|op| match op {
            FusedOp::Unitary1 { src: Some(g), .. } | FusedOp::Passthrough(g) => {
                obj(vec![("k", str_val("g")), ("g", gate_to_value(g))])
            }
            FusedOp::Unitary1 { q, m, src: None } => obj(vec![
                ("k", str_val("m1")),
                ("q", num_u64(u64::from(*q))),
                ("m", mat2_to_value(m)),
            ]),
            FusedOp::Unitary2 { src: Some(g), .. } => {
                obj(vec![("k", str_val("g")), ("g", gate_to_value(g))])
            }
            FusedOp::Unitary2 {
                q_hi,
                q_lo,
                m,
                src: None,
            } => obj(vec![
                ("k", str_val("m2")),
                ("hi", num_u64(u64::from(*q_hi))),
                ("lo", num_u64(u64::from(*q_lo))),
                ("m", mat4_to_value(m)),
            ]),
            FusedOp::Unitary3 { q2, q1, q0, m } => obj(vec![
                ("k", str_val("m3")),
                (
                    "qs",
                    Value::Arr([q2, q1, q0].map(|&q| num_u64(u64::from(q))).to_vec()),
                ),
                ("m", mat8_to_value(m)),
            ]),
            FusedOp::Unitary4 { qs, m } => obj(vec![
                ("k", str_val("m4")),
                ("qs", Value::Arr(qs.map(|q| num_u64(u64::from(q))).to_vec())),
                ("m", mat16_to_value(m)),
            ]),
            FusedOp::Unitary5 { qs, m } => obj(vec![
                ("k", str_val("m5")),
                ("qs", Value::Arr(qs.map(|q| num_u64(u64::from(q))).to_vec())),
                ("m", mat32_to_value(m)),
            ]),
            FusedOp::FusedDiag(run) => {
                obj(vec![("k", str_val("d")), ("r", diag_run_to_value(run))])
            }
        })
        .collect();
    Value::Arr(ops)
}

/// Decode a fused-op window (see [`window_to_value`]).
///
/// # Errors
///
/// A human-readable message for malformed input.
pub fn window_from_value(value: &Value) -> Result<Vec<FusedOp>, String> {
    let qs_of = |op: &Value, n: usize| -> Result<Vec<u16>, String> {
        let arr = op
            .get("qs")
            .and_then(Value::as_arr)
            .ok_or("window op: no qs")?;
        if arr.len() != n {
            return Err(format!("window op: expected {n} qubits"));
        }
        arr.iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|q| u16::try_from(q).ok())
                    .ok_or("window op: bad qubit".to_string())
            })
            .collect()
    };
    fn m_of(op: &Value) -> Result<&Value, String> {
        op.get("m").ok_or_else(|| "window op: no m".to_string())
    }
    value
        .as_arr()
        .ok_or("window is not an array")?
        .iter()
        .map(|op| {
            let kind = op
                .get("k")
                .and_then(Value::as_str)
                .ok_or("window op lacks a kind")?;
            Ok(match kind {
                "g" => {
                    FusedOp::Passthrough(gate_from_value(op.get("g").ok_or("window op: no g")?)?)
                }
                "m1" => FusedOp::Unitary1 {
                    q: op
                        .get("q")
                        .and_then(Value::as_u64)
                        .and_then(|q| u16::try_from(q).ok())
                        .ok_or("window op: bad q")?,
                    m: mat2_from_value(m_of(op)?)?,
                    src: None,
                },
                "m2" => {
                    let q = |key: &str| {
                        op.get(key)
                            .and_then(Value::as_u64)
                            .and_then(|q| u16::try_from(q).ok())
                            .ok_or(format!("window op: bad {key}"))
                    };
                    FusedOp::Unitary2 {
                        q_hi: q("hi")?,
                        q_lo: q("lo")?,
                        m: mat4_from_value(m_of(op)?)?,
                        src: None,
                    }
                }
                "m3" => {
                    let qs = qs_of(op, 3)?;
                    FusedOp::Unitary3 {
                        q2: qs[0],
                        q1: qs[1],
                        q0: qs[2],
                        m: Box::new(mat8_from_value(m_of(op)?)?),
                    }
                }
                "m4" => {
                    let qs = qs_of(op, 4)?;
                    FusedOp::Unitary4 {
                        qs: [qs[0], qs[1], qs[2], qs[3]],
                        m: Box::new(mat16_from_value(m_of(op)?)?),
                    }
                }
                "m5" => {
                    let qs = qs_of(op, 5)?;
                    FusedOp::Unitary5 {
                        qs: [qs[0], qs[1], qs[2], qs[3], qs[4]],
                        m: Box::new(mat32_from_value(m_of(op)?)?),
                    }
                }
                "d" => {
                    FusedOp::FusedDiag(diag_run_from_value(op.get("r").ok_or("window op: no r")?)?)
                }
                other => return Err(format!("unknown window op kind {other:?}")),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_round_trip_covers_the_mnemonic_table() {
        let gates = [
            Gate::new(GateKind::H, &[3]),
            Gate::new(GateKind::Rz(0.1234567891234), &[0]),
            Gate::new(GateKind::U3(0.1, -2.5, 3.75), &[2]),
            Gate::new(GateKind::Cx, &[5, 1]),
            Gate::new(GateKind::FSim(0.5, -0.25), &[4, 0]),
            Gate::new(GateKind::Ccx, &[2, 1, 0]),
        ];
        for g in &gates {
            let v = gate_to_value(g);
            let back = gate_from_value(&v).unwrap();
            assert_eq!(back.kind(), g.kind());
            assert_eq!(back.qubits(), g.qubits());
        }
    }

    #[test]
    fn dense_unitaries_round_trip_bit_exactly() {
        let m2 = GateKind::Sw.matrix1().unwrap();
        let v = mat2_to_value(&m2);
        let text = v.to_json();
        let back = mat2_from_value(&tqsim_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.0, m2.0, "shortest-round-trip floats must be exact");
        let m4 = GateKind::FSim(0.777, -1.3).matrix2().unwrap();
        let back4 = mat4_from_value(&tqsim_json::parse(&mat4_to_value(&m4).to_json()).unwrap());
        assert_eq!(back4.unwrap().0, m4.0);
    }

    #[test]
    fn diag_runs_round_trip() {
        let mut run = DiagRun::new();
        run.push1(3, GateKind::T.diag1().unwrap());
        run.push2(5, 1, GateKind::Cz.diag2().unwrap());
        let back =
            diag_run_from_value(&tqsim_json::parse(&diag_run_to_value(&run).to_json()).unwrap())
                .unwrap();
        assert_eq!(back.terms1(), run.terms1());
        assert_eq!(back.terms2(), run.terms2());
    }

    #[test]
    fn wide_matrices_and_windows_round_trip() {
        // Build genuinely wide matrices through the embed helpers so every
        // row carries non-trivial values.
        let m4 = GateKind::FSim(0.777, -1.3).matrix2().unwrap();
        let m16 = Mat16::from_mat4(&m4, 3, 1).mul(&Mat16::from_mat4(&m4, 2, 0));
        let back16 =
            mat16_from_value(&tqsim_json::parse(&mat16_to_value(&m16).to_json()).unwrap()).unwrap();
        assert_eq!(back16.0, m16.0, "mat16 must round-trip bit-exactly");
        let m32 = Mat32::from_mat16(&m16, [0, 2, 3, 4]);
        let back32 =
            mat32_from_value(&tqsim_json::parse(&mat32_to_value(&m32).to_json()).unwrap()).unwrap();
        assert_eq!(back32.0, m32.0, "mat32 must round-trip bit-exactly");

        let mut run = DiagRun::new();
        run.push1(2, GateKind::T.diag1().unwrap());
        let window = vec![
            FusedOp::Passthrough(Gate::new(GateKind::H, &[1])),
            FusedOp::Unitary1 {
                q: 0,
                m: GateKind::Sw.matrix1().unwrap(),
                src: None,
            },
            FusedOp::Unitary2 {
                q_hi: 3,
                q_lo: 1,
                m: m4,
                src: None,
            },
            FusedOp::Unitary4 {
                qs: [4, 3, 1, 0],
                m: Box::new(m16),
            },
            FusedOp::Unitary5 {
                qs: [5, 4, 3, 1, 0],
                m: Box::new(m32),
            },
            FusedOp::FusedDiag(run),
        ];
        let text = window_to_value(&window).to_json();
        let back = window_from_value(&tqsim_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.len(), window.len());
        // Application equivalence: the decoded window produces bit-identical
        // amplitudes on a slice.
        let mut a: Vec<C64> = (0..64).map(|i| c64(1.0 / (i as f64 + 1.0), 0.1)).collect();
        let mut b = a.clone();
        tqsim_statevec::apply_window_amps(&mut a, 64, &window);
        tqsim_statevec::apply_window_amps(&mut b, 64, &back);
        assert_eq!(a, b);
    }

    #[test]
    fn binary_frames_round_trip() {
        let amps = vec![c64(1.0, -2.0), c64(0.3333333333333333, f64::MIN_POSITIVE)];
        let mut buf = Vec::new();
        write_amps(&mut buf, &amps).unwrap();
        assert_eq!(buf.len(), 8 + 32);
        let back = read_amps(&mut &buf[..]).unwrap();
        assert_eq!(back, amps);
    }

    #[test]
    fn control_lines_round_trip() {
        let v = obj(vec![("v", str_val("dswap")), ("gb", num_u64(1))]);
        let mut buf = Vec::new();
        send_line(&mut buf, &v).unwrap();
        let back = recv_line(&mut &buf[..]).unwrap();
        assert_eq!(back.get("v").and_then(Value::as_str), Some("dswap"));
        assert_eq!(back.get("gb").and_then(Value::as_u64), Some(1));
    }
}
