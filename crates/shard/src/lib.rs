//! # tqsim-shard
//!
//! Real multi-**process** cluster execution: the state vector sliced
//! across shard worker processes on loopback TCP, bit-identical to the
//! in-process distributed backend.
//!
//! The in-process `tqsim-cluster` backend simulates a qHiPSTER node group
//! with one thread per node; this crate replaces the threads with actual
//! OS processes and the shared-memory half-slice swaps with a real wire
//! protocol, while keeping every observable — amplitudes, `Counts`,
//! deterministic cluster counters, exchange schedules — **bit-identical**
//! to that backend. The pieces:
//!
//! * [`proto`] — the wire protocol: line-delimited JSON control verbs
//!   (the `tqsim-service` codec idiom, via `tqsim-json`) plus
//!   length-prefixed binary amplitude frames;
//! * [`worker`] — the worker process runtime: owns one node slice, applies
//!   node-local kernels, and exchanges dswap halves peer-to-peer over a
//!   lazily-dialed worker mesh;
//! * [`cluster`] — process lifecycle: spawn/handshake/shutdown, the
//!   single-mutex coordinator transport, and the `kill_worker` chaos hook;
//! * [`state`] — [`ShardedStateVector`], the coordinator-side
//!   `QuantumState` that drives verbs and owns every deterministic
//!   decision (layout remaps, counters, chained fp reductions);
//! * [`backend`] — [`ShardBackend`], the `PooledBackend` descriptor that
//!   plugs the whole thing in behind the engine's executor seam.
//!
//! Exchange batching (deferred dswap undos across runs of fused ops) is
//! shared with the in-process backend through
//! `tqsim_cluster::LayoutTracker`, so both backends produce the same
//! reduced exchange schedule when it is enabled.
//!
//! Transport failures — a worker process dying mid-job, or an injected
//! `shard.transport` failpoint — panic on the coordinator thread driving
//! the job; the engine's per-task panic isolation contains the blast
//! radius to that job and the service's retry/degradation ladder recovers.

#![warn(missing_docs)]

pub mod backend;
pub mod cluster;
pub mod proto;
pub mod state;
pub mod worker;

pub use backend::ShardBackend;
pub use cluster::{ClusterLink, ShardCluster};
pub use state::ShardedStateVector;
