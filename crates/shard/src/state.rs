//! The multi-process distributed state: coordinator-side twin of
//! [`tqsim_cluster::DistributedStateVector`].
//!
//! A [`ShardedStateVector`] owns no amplitudes — worker processes hold the
//! node slices — but it owns **everything that must be deterministic**:
//! the global↔local remap decisions (the shared
//! [`tqsim_cluster::LayoutTracker`]), every counter, the interconnect
//! pricing, and the chained floating-point reductions for norms, marginals
//! and sampling. Each operation mirrors the in-process implementation
//! decision for decision and addition for addition, so the two backends
//! produce bit-identical amplitudes, `Counts`, and (deterministic) counter
//! values; only `measured_exchange_seconds` differs, because here it times
//! real TCP round-trips.

use crate::cluster::{ClusterLink, ShardCluster};
use std::sync::Arc;
use std::time::Instant;
use tqsim_circuit::math::{Mat16, Mat2, Mat32, Mat4, Mat8, C64};
use tqsim_circuit::Gate;
use tqsim_cluster::{ClusterCounters, ClusterObs, DensePlan, InterconnectModel, LayoutTracker};
use tqsim_json::{num, num_u64, obj, str_val, Value};
use tqsim_statevec::{window_span, DiagRun, FusedOp, QuantumState, StateVector};

fn verb(name: &str, fields: Vec<(&str, Value)>) -> Value {
    let mut all = vec![("v", str_val(name))];
    all.extend(fields);
    obj(all)
}

/// A pure state sliced across shard worker **processes**, driven over TCP.
pub struct ShardedStateVector {
    cluster: Arc<ShardCluster>,
    sid: u64,
    n_qubits: u16,
    g: u16,
    local_n: u16,
    model: InterconnectModel,
    /// Operation counters, including modeled cluster time — deterministic
    /// fields are bit-identical to the in-process backend's for the same
    /// op stream.
    pub counters: ClusterCounters,
    obs: Option<Arc<ClusterObs>>,
    batching: bool,
    layout: LayoutTracker,
}

impl ShardedStateVector {
    /// Allocate `|0…0⟩` across `cluster`'s workers.
    ///
    /// # Errors
    ///
    /// [`tqsim_cluster::ClusterError`] unless the worker count is a power
    /// of two with at least 3 qubits node-local.
    ///
    /// # Panics
    ///
    /// On transport faults.
    pub fn zero(
        cluster: Arc<ShardCluster>,
        n_qubits: u16,
        model: InterconnectModel,
    ) -> Result<Self, tqsim_cluster::ClusterError> {
        let n_nodes = cluster.n_workers();
        tqsim_cluster::check_layout(n_qubits, n_nodes)?;
        let g = n_nodes.trailing_zeros() as u16;
        let local_n = n_qubits - g;
        let sid = cluster.next_sid();
        {
            let mut link = cluster.link();
            link.broadcast_ack(&verb(
                "alloc",
                vec![("sid", num_u64(sid)), ("len", num_u64(1u64 << local_n))],
            ));
        }
        Ok(ShardedStateVector {
            cluster,
            sid,
            n_qubits,
            g,
            local_n,
            model,
            counters: ClusterCounters::default(),
            obs: None,
            batching: false,
            layout: LayoutTracker::new(n_qubits, local_n),
        })
    }

    /// Number of worker processes (= simulated nodes).
    pub fn n_nodes(&self) -> usize {
        self.cluster.n_workers()
    }

    /// Mirror this state's communication and gate activity into `obs`.
    pub fn observe(&mut self, obs: Arc<ClusterObs>) {
        self.obs = Some(obs);
    }

    /// Enable/disable exchange batching (deferred dswap undos). Identical
    /// semantics to the in-process backend: results are bit-identical
    /// either way, only the exchange schedule changes.
    ///
    /// # Panics
    ///
    /// Panics if swaps are currently deferred.
    pub fn set_exchange_batching(&mut self, on: bool) {
        assert!(
            self.layout.is_canonical(),
            "cannot toggle batching with deferred swaps active"
        );
        self.batching = on;
    }

    /// Whether exchange batching is enabled.
    pub fn exchange_batching(&self) -> bool {
        self.batching
    }

    /// Amplitudes held per worker.
    pub fn slice_len(&self) -> usize {
        1usize << self.local_n
    }

    /// Total amplitude bytes across the worker group (`2^n · 16`).
    pub fn bytes(&self) -> usize {
        self.slice_len() * self.n_nodes() * std::mem::size_of::<C64>()
    }

    /// Qubits that are node-local (the low `n − g`).
    pub fn local_qubits(&self) -> u16 {
        self.local_n
    }

    /// Gather the full state from all workers (verification / small-scale
    /// sampling).
    ///
    /// # Panics
    ///
    /// On transport faults.
    pub fn gather(&self) -> StateVector {
        debug_assert!(self.layout.is_canonical(), "gather on deferred layout");
        let mut link = self.cluster.link();
        let mut amps = Vec::with_capacity(1usize << self.n_qubits);
        for rank in 0..self.n_nodes() {
            amps.extend_from_slice(&link.fetch(rank, self.sid));
        }
        StateVector::from_amplitudes(amps)
    }

    /// Squared 2-norm: per-worker partial sums folded in node order — the
    /// same two-level addition tree as the in-process backend.
    pub fn norm_sqr(&self) -> f64 {
        let mut link = self.cluster.link();
        self.norm_sqr_locked(&mut link)
    }

    fn norm_sqr_locked(&self, link: &mut ClusterLink) -> f64 {
        (0..self.n_nodes())
            .map(|rank| {
                link.request(rank, &verb("psum", vec![("sid", num_u64(self.sid))]))
                    .get("x")
                    .and_then(Value::as_f64)
                    .unwrap_or_else(|| panic!("shard transport: malformed psum reply"))
            })
            .sum()
    }

    /// Reset to `|0…0⟩` (counters retained, like the in-process backend).
    pub fn reset_zero(&mut self) {
        self.layout.reset();
        let mut link = self.cluster.link();
        link.broadcast(&verb("reset", vec![("sid", num_u64(self.sid))]));
        drop(link);
        self.charge_compute_pass();
    }

    /// Overwrite with `src`'s amplitudes (worker-local memcpys; TQSim's
    /// intermediate-state copy, same failpoint site as in-process).
    ///
    /// # Panics
    ///
    /// Panics if layouts differ, on transport faults, or on an injected
    /// `cluster.state_copy` fault.
    pub fn copy_from(&mut self, src: &ShardedStateVector) {
        assert_eq!(self.n_qubits, src.n_qubits, "width mismatch");
        assert!(
            Arc::ptr_eq(&self.cluster, &src.cluster),
            "states live on different shard clusters"
        );
        if let Err(fault) = tqsim_faults::trigger("cluster.state_copy") {
            panic!("{fault}");
        }
        debug_assert!(src.layout.is_canonical(), "copy from non-canonical state");
        self.layout.reset();
        let mut link = self.cluster.link();
        link.broadcast(&verb(
            "copy",
            vec![("dst", num_u64(self.sid)), ("src", num_u64(src.sid))],
        ));
        drop(link);
        self.counters.state_copies += 1;
        if let Some(obs) = &self.obs {
            obs.state_copies.inc();
        }
        self.charge_compute_pass();
    }

    /// Whether a fused window can run worker-local at canonical positions:
    /// every dense op (and passthrough gate) must sit below the node
    /// boundary — diagonal runs are offset-aware and never disqualify.
    fn window_is_local(&self, window: &[FusedOp]) -> bool {
        window_span(window).is_none_or(|s| s < self.local_n)
    }

    /// Same fault site as the single-node fused seams, so chaos suites
    /// exercise every backend with one failpoint name.
    fn boundary_failpoint() {
        if tqsim_faults::any_armed() {
            if let Err(e) = tqsim_faults::trigger("plan.boundary") {
                std::panic::panic_any(e);
            }
        }
    }

    /// Overwrite with `src`'s amplitudes **and** apply the child plan's
    /// head window in the same worker visit (cross-boundary fusion): one
    /// silent `capply` broadcast instead of a copy broadcast plus one
    /// broadcast per head op. Counter-for-counter identical to
    /// [`ShardedStateVector::copy_from`] followed by eager window
    /// application, so cross-backend counter parity holds.
    ///
    /// Falls back to exactly that eager sequence when the window touches a
    /// node-selecting qubit (dswaps cannot ride a copy).
    ///
    /// # Panics
    ///
    /// Panics if layouts differ, on transport faults, or on injected
    /// `cluster.state_copy` / `plan.boundary` faults.
    pub fn copy_from_apply(&mut self, src: &ShardedStateVector, head: &[FusedOp]) {
        if head.is_empty() {
            return self.copy_from(src);
        }
        if !self.window_is_local(head) {
            // `apply_window` hits the plan.boundary failpoint itself, so
            // both paths trigger it exactly once per fused copy.
            self.copy_from(src);
            tqsim_statevec::apply_window(self, head);
            return;
        }
        Self::boundary_failpoint();
        assert_eq!(self.n_qubits, src.n_qubits, "width mismatch");
        assert!(
            Arc::ptr_eq(&self.cluster, &src.cluster),
            "states live on different shard clusters"
        );
        if let Err(fault) = tqsim_faults::trigger("cluster.state_copy") {
            panic!("{fault}");
        }
        debug_assert!(src.layout.is_canonical(), "copy from non-canonical state");
        self.layout.reset();
        let mut link = self.cluster.link();
        link.broadcast(&verb(
            "capply",
            vec![
                ("dst", num_u64(self.sid)),
                ("src", num_u64(src.sid)),
                ("w", crate::proto::window_to_value(head)),
            ],
        ));
        drop(link);
        self.counters.state_copies += 1;
        if let Some(obs) = &self.obs {
            obs.state_copies.inc();
        }
        self.charge_compute_pass();
        // Charge the window ops as the eager path would have.
        for _ in head {
            self.note_local_gate();
            self.charge_compute_pass();
        }
    }

    /// Sample one outcome given a uniform draw: the CDF walk is chained
    /// worker to worker with a single running accumulator, replicating the
    /// in-process backend's global-index-order addition sequence exactly.
    pub fn sample_with(&self, u: f64) -> u64 {
        debug_assert!(self.layout.is_canonical(), "sampling on deferred layout");
        let mut link = self.cluster.link();
        let mut acc = 0.0f64;
        for rank in 0..self.n_nodes() {
            let reply = link.request(
                rank,
                &verb(
                    "pick",
                    vec![("sid", num_u64(self.sid)), ("u", num(u)), ("acc", num(acc))],
                ),
            );
            if let Some(hit) = reply.get("hit").and_then(Value::as_u64) {
                return hit;
            }
            acc = reply
                .get("x")
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("shard transport: malformed pick reply"));
        }
        (1u64 << self.n_qubits) - 1
    }

    /// Sample one outcome per draw: the sorted-CDF batched walk, chained
    /// across workers with (index, accumulator) state — draw-for-draw
    /// identical to both in-process backends.
    pub fn sample_many(&self, us: &[f64]) -> Vec<u64> {
        debug_assert!(self.layout.is_canonical(), "sampling on deferred layout");
        let mut order: Vec<usize> = (0..us.len()).collect();
        order.sort_by(|&i, &j| us[i].total_cmp(&us[j]));
        let mut out = vec![0u64; us.len()];
        if us.is_empty() {
            return out;
        }
        let total = 1u64 << self.n_qubits;
        let mut link = self.cluster.link();
        let mut done = 0usize;
        let mut idx = 0u64;
        let mut acc = 0.0f64;
        for rank in 0..self.n_nodes() {
            let pending = Value::Arr(order[done..].iter().map(|&slot| num(us[slot])).collect());
            let reply = link.request(
                rank,
                &verb(
                    "walk",
                    vec![
                        ("sid", num_u64(self.sid)),
                        ("us", pending),
                        ("idx", num_u64(idx)),
                        ("acc", num(acc)),
                        ("total", num_u64(total)),
                        ("init", Value::Bool(rank == 0)),
                    ],
                ),
            );
            let outcomes = reply
                .get("out")
                .and_then(Value::as_arr)
                .unwrap_or_else(|| panic!("shard transport: malformed walk reply"));
            for outcome in outcomes {
                let oc = outcome
                    .as_u64()
                    .unwrap_or_else(|| panic!("shard transport: malformed walk outcome"));
                out[order[done]] = oc;
                done += 1;
            }
            if done == order.len() {
                break;
            }
            idx = reply
                .get("idx")
                .and_then(Value::as_u64)
                .unwrap_or_else(|| panic!("shard transport: malformed walk idx"));
            acc = reply
                .get("acc")
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("shard transport: malformed walk acc"));
        }
        debug_assert_eq!(done, order.len(), "walk chain under-consumed draws");
        out
    }

    #[inline]
    fn note_local_gate(&mut self) {
        self.counters.local_gates += 1;
        if let Some(obs) = &self.obs {
            obs.local_gates.inc();
        }
    }

    #[inline]
    fn note_remapped_gate(&mut self) {
        self.counters.global_gates += 1;
        if let Some(obs) = &self.obs {
            obs.remapped_gates.inc();
        }
    }

    fn charge_compute_pass(&mut self) {
        let slice_len = self.slice_len() as u64;
        self.counters.amp_ops += slice_len * self.n_nodes() as u64;
        self.counters.simulated_seconds += self.model.compute_time(slice_len);
    }

    /// Broadcast one node-local sweep verb and charge a compute pass —
    /// the transport twin of the in-process `each_node`.
    fn each_node(&mut self, value: &Value) {
        let mut link = self.cluster.link();
        link.broadcast(value);
        drop(link);
        self.charge_compute_pass();
    }

    /// One distributed swap across all workers: broadcast + acks under a
    /// single lock (so every worker pairs up on the same exchange), with
    /// the round-trip wall-clock recorded as measured exchange time.
    fn dswap(&mut self, gb: u16, lq: u16) {
        debug_assert!(gb < self.g && lq < self.local_n);
        // Same fault site as the in-process exchange, so chaos suites
        // exercise both backends with one failpoint name.
        if let Err(fault) = tqsim_faults::trigger("cluster.exchange") {
            panic!("{fault}");
        }
        let start = Instant::now();
        {
            let mut link = self.cluster.link();
            link.broadcast_ack(&verb(
                "dswap",
                vec![
                    ("sid", num_u64(self.sid)),
                    ("gb", num_u64(u64::from(gb))),
                    ("lq", num_u64(u64::from(lq))),
                ],
            ));
        }
        let measured = start.elapsed().as_secs_f64();
        let half_bytes = (self.slice_len() / 2 * 16) as u64;
        let simulated = self.model.exchange_time(half_bytes);
        let total_bytes = half_bytes * self.n_nodes() as u64;
        self.counters.exchanges += 1;
        self.counters.bytes_exchanged += total_bytes;
        self.counters.simulated_seconds += simulated;
        self.counters.measured_exchange_seconds += measured;
        if let Some(obs) = &self.obs {
            obs.note_exchange(total_bytes, measured, simulated);
        }
    }

    /// Distributed-swap every global operand down to a scratch local qubit
    /// (the eager remap; same scratch-selection rule as in-process).
    fn remap_to_local(&mut self, qubits: &[u16]) -> (Vec<u16>, Vec<(u16, u16)>) {
        let local_n = self.local_n;
        let mut qubits = qubits.to_vec();
        let mut scratch: Vec<u16> = (0..local_n)
            .rev()
            .filter(|q| !qubits.contains(q))
            .take(qubits.len())
            .collect();
        let mut swaps: Vec<(u16, u16)> = Vec::new();
        for q in qubits.iter_mut() {
            if *q >= local_n {
                let dst = scratch
                    .pop()
                    .expect("layout check guarantees >= 3 local qubits");
                let gb = *q - local_n;
                self.dswap(gb, dst);
                swaps.push((gb, dst));
                *q = dst;
            }
        }
        (qubits, swaps)
    }

    fn undo_remap(&mut self, swaps: &[(u16, u16)]) {
        for &(gb, dst) in swaps.iter().rev() {
            self.dswap(gb, dst);
        }
    }

    /// Batched-mode dense dispatch: the same [`LayoutTracker`] decision
    /// procedure as the in-process backend, with `make` building the
    /// node-local sweep verb for the physical operand positions.
    fn apply_batched<F>(&mut self, qs: &[u16], make: F)
    where
        F: Fn(&[u16]) -> Value,
    {
        let logically_local = qs.iter().all(|&q| q < self.local_n);
        let phys = match self.layout.decide_dense(qs) {
            DensePlan::InPlace { phys } => phys,
            DensePlan::FlushThenLocal { undo } => {
                for &(gb, dst) in &undo {
                    self.dswap(gb, dst);
                }
                qs.to_vec()
            }
            DensePlan::FlushThenRemap { undo, swaps, phys } => {
                for &(gb, dst) in undo.iter().chain(swaps.iter()) {
                    self.dswap(gb, dst);
                }
                phys
            }
        };
        self.each_node(&make(&phys));
        if logically_local {
            self.note_local_gate();
        } else {
            self.note_remapped_gate();
        }
    }

    fn flush_layout(&mut self) {
        if !self.layout.is_canonical() {
            for (gb, dst) in self.layout.decide_sync() {
                self.dswap(gb, dst);
            }
        }
    }

    fn gate_verb(&self, gate: &Gate) -> Value {
        verb(
            "gate",
            vec![
                ("sid", num_u64(self.sid)),
                ("g", crate::proto::gate_to_value(gate)),
            ],
        )
    }
}

impl Drop for ShardedStateVector {
    fn drop(&mut self) {
        // Best-effort: freeing a slice on a dead/killed cluster is fine to
        // skip — the workers are gone with their memory.
        let free = verb("free", vec![("sid", num_u64(self.sid))]);
        let mut link = self.cluster.link_quiet();
        for rank in 0..self.cluster.n_workers() {
            let _ = link.try_send(rank, &free);
        }
    }
}

impl QuantumState for ShardedStateVector {
    fn n_qubits(&self) -> u16 {
        self.n_qubits
    }

    fn apply_gate(&mut self, gate: &Gate) {
        for &q in gate.qubits() {
            assert!(q < self.n_qubits, "gate {gate} out of range");
        }
        if self.batching {
            let kind = *gate.kind();
            let sid = self.sid;
            self.apply_batched(gate.qubits(), move |ps| {
                verb(
                    "gate",
                    vec![
                        ("sid", num_u64(sid)),
                        ("g", crate::proto::gate_to_value(&Gate::new(kind, ps))),
                    ],
                )
            });
            return;
        }
        if gate.qubits().iter().all(|&q| q < self.local_n) {
            let v = self.gate_verb(gate);
            self.each_node(&v);
            self.note_local_gate();
        } else {
            let (qubits, swaps) = self.remap_to_local(gate.qubits());
            let v = self.gate_verb(&Gate::new(*gate.kind(), &qubits));
            self.each_node(&v);
            self.undo_remap(&swaps);
            self.note_remapped_gate();
        }
    }

    fn apply_mat2(&mut self, q: u16, m: &Mat2) {
        assert!(q < self.n_qubits, "qubit out of range");
        let mk = |sid: u64, ps: &[u16], m: &Mat2| {
            verb(
                "mat2",
                vec![
                    ("sid", num_u64(sid)),
                    ("q", num_u64(u64::from(ps[0]))),
                    ("m", crate::proto::mat2_to_value(m)),
                ],
            )
        };
        if self.batching {
            let sid = self.sid;
            let m = *m;
            self.apply_batched(&[q], move |ps| mk(sid, ps, &m));
            return;
        }
        if q < self.local_n {
            let v = mk(self.sid, &[q], m);
            self.each_node(&v);
            self.note_local_gate();
        } else {
            let (qs, swaps) = self.remap_to_local(&[q]);
            let v = mk(self.sid, &qs, m);
            self.each_node(&v);
            self.undo_remap(&swaps);
            self.note_remapped_gate();
        }
    }

    fn apply_mat4(&mut self, q_hi: u16, q_lo: u16, m: &Mat4) {
        assert!(
            q_hi < self.n_qubits && q_lo < self.n_qubits,
            "qubit out of range"
        );
        let mk = |sid: u64, ps: &[u16], m: &Mat4| {
            verb(
                "mat4",
                vec![
                    ("sid", num_u64(sid)),
                    ("hi", num_u64(u64::from(ps[0]))),
                    ("lo", num_u64(u64::from(ps[1]))),
                    ("m", crate::proto::mat4_to_value(m)),
                ],
            )
        };
        if self.batching {
            let sid = self.sid;
            let m = *m;
            self.apply_batched(&[q_hi, q_lo], move |ps| mk(sid, ps, &m));
            return;
        }
        if q_hi < self.local_n && q_lo < self.local_n {
            let v = mk(self.sid, &[q_hi, q_lo], m);
            self.each_node(&v);
            self.note_local_gate();
        } else {
            let (qs, swaps) = self.remap_to_local(&[q_hi, q_lo]);
            let v = mk(self.sid, &qs, m);
            self.each_node(&v);
            self.undo_remap(&swaps);
            self.note_remapped_gate();
        }
    }

    fn apply_mat8(&mut self, q2: u16, q1: u16, q0: u16, m: &Mat8) {
        assert!(
            q2 < self.n_qubits && q1 < self.n_qubits && q0 < self.n_qubits,
            "qubit out of range"
        );
        let mk = |sid: u64, ps: &[u16], m: &Mat8| {
            verb(
                "mat8",
                vec![
                    ("sid", num_u64(sid)),
                    ("q2", num_u64(u64::from(ps[0]))),
                    ("q1", num_u64(u64::from(ps[1]))),
                    ("q0", num_u64(u64::from(ps[2]))),
                    ("m", crate::proto::mat8_to_value(m)),
                ],
            )
        };
        if self.batching {
            let sid = self.sid;
            let m = *m;
            self.apply_batched(&[q2, q1, q0], move |ps| mk(sid, ps, &m));
            return;
        }
        if q2 < self.local_n && q1 < self.local_n && q0 < self.local_n {
            let v = mk(self.sid, &[q2, q1, q0], m);
            self.each_node(&v);
            self.note_local_gate();
        } else {
            let (qs, swaps) = self.remap_to_local(&[q2, q1, q0]);
            let v = mk(self.sid, &qs, m);
            self.each_node(&v);
            self.undo_remap(&swaps);
            self.note_remapped_gate();
        }
    }

    fn apply_mat16(&mut self, qs: [u16; 4], m: &Mat16) {
        assert!(qs.iter().all(|&q| q < self.n_qubits), "qubit out of range");
        assert!(
            self.local_n >= 4,
            "4-qubit fusion clusters need >= 4 node-local qubits \
             (n_qubits >= log2(workers) + 4); lower max_fuse_qubits"
        );
        let mk = |sid: u64, ps: &[u16], m: &Mat16| {
            verb(
                "mat16",
                vec![
                    ("sid", num_u64(sid)),
                    (
                        "qs",
                        Value::Arr(ps.iter().map(|&q| num_u64(u64::from(q))).collect()),
                    ),
                    ("m", crate::proto::mat16_to_value(m)),
                ],
            )
        };
        if self.batching {
            let sid = self.sid;
            self.apply_batched(&qs, move |ps| mk(sid, ps, m));
            return;
        }
        if qs.iter().all(|&q| q < self.local_n) {
            let v = mk(self.sid, &qs, m);
            self.each_node(&v);
            self.note_local_gate();
        } else {
            let (remapped, swaps) = self.remap_to_local(&qs);
            let v = mk(self.sid, &remapped, m);
            self.each_node(&v);
            self.undo_remap(&swaps);
            self.note_remapped_gate();
        }
    }

    fn apply_mat32(&mut self, qs: [u16; 5], m: &Mat32) {
        assert!(qs.iter().all(|&q| q < self.n_qubits), "qubit out of range");
        assert!(
            self.local_n >= 5,
            "5-qubit fusion clusters need >= 5 node-local qubits \
             (n_qubits >= log2(workers) + 5); lower max_fuse_qubits"
        );
        let mk = |sid: u64, ps: &[u16], m: &Mat32| {
            verb(
                "mat32",
                vec![
                    ("sid", num_u64(sid)),
                    (
                        "qs",
                        Value::Arr(ps.iter().map(|&q| num_u64(u64::from(q))).collect()),
                    ),
                    ("m", crate::proto::mat32_to_value(m)),
                ],
            )
        };
        if self.batching {
            let sid = self.sid;
            self.apply_batched(&qs, move |ps| mk(sid, ps, m));
            return;
        }
        if qs.iter().all(|&q| q < self.local_n) {
            let v = mk(self.sid, &qs, m);
            self.each_node(&v);
            self.note_local_gate();
        } else {
            let (remapped, swaps) = self.remap_to_local(&qs);
            let v = mk(self.sid, &remapped, m);
            self.each_node(&v);
            self.undo_remap(&swaps);
            self.note_remapped_gate();
        }
    }

    fn apply_diag_run(&mut self, run: &DiagRun) {
        // Same flush rule as in-process: diagonal sweeps read canonical
        // bit positions, so a run touching displaced qubits flushes first.
        if self.batching
            && !(self
                .layout
                .is_identity_on(run.terms1().iter().map(|(q, _)| q))
                && self
                    .layout
                    .is_identity_on(run.terms2().iter().flat_map(|(a, b, _)| [a, b])))
        {
            self.flush_layout();
        }
        let mut v = crate::proto::diag_run_to_value(run);
        if let Value::Obj(fields) = &mut v {
            fields.insert(0, ("v".to_string(), str_val("diagrun")));
            fields.insert(1, ("sid".to_string(), num_u64(self.sid)));
        }
        self.each_node(&v);
        self.note_local_gate();
    }

    fn marginal_one(&self, q: u16) -> f64 {
        assert!(q < self.n_qubits, "qubit out of range");
        debug_assert!(self.layout.is_canonical(), "marginal on deferred layout");
        let mut link = self.cluster.link();
        if q >= self.local_n {
            // Node-selecting bit: per-slice sums of the masked nodes,
            // folded in node order — as in-process.
            let mask = 1usize << (q - self.local_n);
            (0..self.n_nodes())
                .filter(|rank| rank & mask != 0)
                .map(|rank| {
                    link.request(rank, &verb("psum", vec![("sid", num_u64(self.sid))]))
                        .get("x")
                        .and_then(Value::as_f64)
                        .unwrap_or_else(|| panic!("shard transport: malformed psum reply"))
                })
                .sum()
        } else {
            // Local bit: one flat accumulator chained through the workers
            // in node order — the in-process one-pass sum, distributed.
            let mut acc = 0.0f64;
            for rank in 0..self.n_nodes() {
                acc = link
                    .request(
                        rank,
                        &verb(
                            "msum",
                            vec![
                                ("sid", num_u64(self.sid)),
                                ("q", num_u64(u64::from(q))),
                                ("acc", num(acc)),
                            ],
                        ),
                    )
                    .get("x")
                    .and_then(Value::as_f64)
                    .unwrap_or_else(|| panic!("shard transport: malformed msum reply"));
            }
            acc
        }
    }

    fn apply_diag1(&mut self, q: u16, d0: C64, d1: C64) {
        assert!(q < self.n_qubits, "qubit out of range");
        self.flush_layout();
        if q >= self.local_n {
            let mask = 1u64 << (q - self.local_n);
            let v = verb(
                "scale_bit",
                vec![
                    ("sid", num_u64(self.sid)),
                    ("mask", num_u64(mask)),
                    ("d", crate::proto::c64s_to_value([&d0, &d1])),
                ],
            );
            self.each_node(&v);
        } else {
            let v = verb(
                "diag1",
                vec![
                    ("sid", num_u64(self.sid)),
                    ("q", num_u64(u64::from(q))),
                    ("d", crate::proto::c64s_to_value([&d0, &d1])),
                ],
            );
            self.each_node(&v);
        }
    }

    fn apply_antidiag1(&mut self, q: u16, a01: C64, a10: C64) {
        assert!(q < self.n_qubits, "qubit out of range");
        self.flush_layout();
        if q >= self.local_n {
            // Cross-node combine: an exchange round, same fault site and
            // accounting as in-process (no compute pass charged).
            if let Err(fault) = tqsim_faults::trigger("cluster.exchange") {
                panic!("{fault}");
            }
            let start = Instant::now();
            {
                let step = 1u64 << (q - self.local_n);
                let mut link = self.cluster.link();
                link.broadcast_ack(&verb(
                    "antidiag_g",
                    vec![
                        ("sid", num_u64(self.sid)),
                        ("step", num_u64(step)),
                        ("a", crate::proto::c64s_to_value([&a01, &a10])),
                    ],
                ));
            }
            let measured = start.elapsed().as_secs_f64();
            let bytes = (self.slice_len() * 16) as u64;
            let simulated = self.model.exchange_time(bytes);
            let total_bytes = bytes * self.n_nodes() as u64;
            self.counters.exchanges += 1;
            self.counters.bytes_exchanged += total_bytes;
            self.counters.simulated_seconds += simulated;
            self.counters.measured_exchange_seconds += measured;
            if let Some(obs) = &self.obs {
                obs.note_exchange(total_bytes, measured, simulated);
            }
        } else {
            let v = verb(
                "antidiag",
                vec![
                    ("sid", num_u64(self.sid)),
                    ("q", num_u64(u64::from(q))),
                    ("a", crate::proto::c64s_to_value([&a01, &a10])),
                ],
            );
            self.each_node(&v);
        }
    }

    fn renormalize(&mut self) {
        self.flush_layout();
        let mut link = self.cluster.link();
        let n = self.norm_sqr_locked(&mut link);
        assert!(n > 1e-300, "cannot normalise a zero state");
        let s = 1.0 / n.sqrt();
        link.broadcast(&verb(
            "scale",
            vec![("sid", num_u64(self.sid)), ("s", num(s))],
        ));
        drop(link);
        self.charge_compute_pass();
        self.counters.simulated_seconds += self.model.allreduce_time(self.n_nodes());
    }

    fn norm_sqr(&self) -> f64 {
        ShardedStateVector::norm_sqr(self)
    }

    fn sample_with(&self, u: f64) -> u64 {
        ShardedStateVector::sample_with(self, u)
    }

    fn sample_many(&self, us: &[f64]) -> Vec<u64> {
        ShardedStateVector::sample_many(self, us)
    }

    /// Fused tail-window sampling over the wire: one chained `fwalk` pass
    /// where each visited worker applies the window to its slice and then
    /// walks the sorted CDF, so the tail never costs a separate broadcast
    /// round. Workers the walk never reaches get a fire-and-forget
    /// `wapply` so the state still materialises identically everywhere.
    fn sample_fused(&mut self, window: &[FusedOp], us: &[f64]) -> Vec<u64> {
        if window.is_empty() {
            return self.sample_many(us);
        }
        if us.is_empty() || !self.layout.is_canonical() || !self.window_is_local(window) {
            // `apply_window` hits the plan.boundary failpoint itself, so
            // both paths trigger it exactly once per fused sample.
            tqsim_statevec::apply_window(self, window);
            return self.sample_many(us);
        }
        Self::boundary_failpoint();
        for _ in window {
            self.note_local_gate();
            self.charge_compute_pass();
        }
        let wv = crate::proto::window_to_value(window);
        let mut order: Vec<usize> = (0..us.len()).collect();
        order.sort_by(|&i, &j| us[i].total_cmp(&us[j]));
        let mut out = vec![0u64; us.len()];
        let total = 1u64 << self.n_qubits;
        let n_nodes = self.n_nodes();
        let sid = self.sid;
        let mut link = self.cluster.link();
        let mut done = 0usize;
        let mut idx = 0u64;
        let mut acc = 0.0f64;
        let mut visited = 0usize;
        for rank in 0..n_nodes {
            visited = rank + 1;
            let pending = Value::Arr(order[done..].iter().map(|&slot| num(us[slot])).collect());
            let reply = link.request(
                rank,
                &verb(
                    "fwalk",
                    vec![
                        ("sid", num_u64(sid)),
                        ("us", pending),
                        ("idx", num_u64(idx)),
                        ("acc", num(acc)),
                        ("total", num_u64(total)),
                        ("init", Value::Bool(rank == 0)),
                        ("w", wv.clone()),
                    ],
                ),
            );
            let outcomes = reply
                .get("out")
                .and_then(Value::as_arr)
                .unwrap_or_else(|| panic!("shard transport: malformed fwalk reply"));
            for outcome in outcomes {
                let oc = outcome
                    .as_u64()
                    .unwrap_or_else(|| panic!("shard transport: malformed fwalk outcome"));
                out[order[done]] = oc;
                done += 1;
            }
            if done == order.len() {
                break;
            }
            idx = reply
                .get("idx")
                .and_then(Value::as_u64)
                .unwrap_or_else(|| panic!("shard transport: malformed fwalk idx"));
            acc = reply
                .get("acc")
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("shard transport: malformed fwalk acc"));
        }
        debug_assert_eq!(done, order.len(), "fwalk chain under-consumed draws");
        // Materialise the window on ranks the early-exit walk skipped.
        for rank in visited..n_nodes {
            link.send(
                rank,
                &verb("wapply", vec![("sid", num_u64(sid)), ("w", wv.clone())]),
            );
        }
        out
    }

    fn sync_layout(&mut self) {
        self.flush_layout();
    }
}

impl std::fmt::Debug for ShardedStateVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShardedStateVector[{} qubits over {} worker processes]",
            self.n_qubits,
            self.n_nodes()
        )
    }
}
