//! The multi-process execution backend: a [`PooledBackend`] over a live
//! [`ShardCluster`], the process-per-node twin of
//! `tqsim_cluster::ClusterBackend`.
//!
//! Like the in-process cluster backend it is a cheap clonable descriptor
//! (the worker processes live behind an `Arc`), so `tqsim_statevec`'s
//! state pool, the `tqsim-engine` pooled tree executor and `tqsim`'s
//! serial tree walk drive real worker processes through exactly the same
//! seam they drive threads through. Parent→child copies stay
//! worker-local memcpys (one `copy` verb per worker); intermediate states
//! never cross the wire.

use crate::cluster::ShardCluster;
use crate::state::ShardedStateVector;
use std::io;
use std::sync::Arc;
use tqsim_cluster::{check_layout, ClusterError, ClusterObs, InterconnectModel};
use tqsim_statevec::PooledBackend;

/// A pooled-execution backend whose states are sliced across shard worker
/// **processes**.
#[derive(Clone)]
pub struct ShardBackend {
    cluster: Arc<ShardCluster>,
    model: InterconnectModel,
    obs: Option<Arc<ClusterObs>>,
    batching: bool,
}

/// Backends compare by topology (worker count, interconnect model,
/// batching mode); whether one is observed does not change what it
/// computes. Two backends over *different* live clusters with the same
/// topology compare equal — they compute the same thing.
impl PartialEq for ShardBackend {
    fn eq(&self, other: &Self) -> bool {
        self.cluster.n_workers() == other.cluster.n_workers()
            && self.model == other.model
            && self.batching == other.batching
    }
}

impl ShardBackend {
    /// Spawn `n_workers` worker processes on loopback and wrap them as a
    /// backend pricing communication with the commodity-cluster model.
    ///
    /// # Errors
    ///
    /// Spawn/handshake IO failures.
    ///
    /// # Panics
    ///
    /// Panics unless `n_workers` is a power of two ≥ 1, or if the worker
    /// binary cannot be located or built.
    pub fn spawn(n_workers: usize) -> io::Result<Self> {
        Self::spawn_with_model(n_workers, InterconnectModel::commodity_cluster())
    }

    /// [`ShardBackend::spawn`] with an explicit interconnect model for the
    /// simulated-time accounting.
    ///
    /// # Errors
    ///
    /// Spawn/handshake IO failures.
    pub fn spawn_with_model(n_workers: usize, model: InterconnectModel) -> io::Result<Self> {
        let cluster = Arc::new(ShardCluster::spawn(n_workers)?);
        Ok(ShardBackend {
            cluster,
            model,
            obs: None,
            batching: false,
        })
    }

    /// Mirror every allocated state's communication and gate activity into
    /// `obs` (see `ClusterObs::register`).
    #[must_use]
    pub fn observed(mut self, obs: Arc<ClusterObs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Enable exchange batching (deferred dswap undos, see
    /// [`ShardedStateVector::set_exchange_batching`]) on every state this
    /// backend allocates.
    #[must_use]
    pub fn exchange_batching(mut self, on: bool) -> Self {
        self.batching = on;
        self
    }

    /// Number of worker processes states are sliced across.
    pub fn n_workers(&self) -> usize {
        self.cluster.n_workers()
    }

    /// The interconnect model communication is priced with.
    pub fn model(&self) -> InterconnectModel {
        self.model
    }

    /// The live worker topology (shared with every clone of this backend).
    /// Exposed for health checks ([`ShardCluster::ping`]) and chaos tests
    /// ([`ShardCluster::kill_worker`]).
    pub fn cluster(&self) -> &Arc<ShardCluster> {
        &self.cluster
    }

    /// Check that `n_qubits`-wide states can be sliced across this worker
    /// group (≥ 3 qubits must stay worker-local).
    ///
    /// # Errors
    ///
    /// The same conditions as the in-process backend — the rule is shared
    /// via [`check_layout`].
    pub fn validate(&self, n_qubits: u16) -> Result<(), ClusterError> {
        check_layout(n_qubits, self.cluster.n_workers())
    }

    /// Whether `n_qubits`-wide states fit this worker group.
    pub fn supports(&self, n_qubits: u16) -> bool {
        self.validate(n_qubits).is_ok()
    }
}

impl PooledBackend for ShardBackend {
    type State = ShardedStateVector;

    fn supports(&self, n_qubits: u16) -> bool {
        ShardBackend::supports(self, n_qubits)
    }

    fn allocate(&self, n_qubits: u16) -> ShardedStateVector {
        let mut state = ShardedStateVector::zero(Arc::clone(&self.cluster), n_qubits, self.model)
            .unwrap_or_else(|err| {
                panic!("executors must gate on PooledBackend::supports before allocating: {err}")
            });
        if let Some(obs) = &self.obs {
            state.observe(Arc::clone(obs));
        }
        state.set_exchange_batching(self.batching);
        state
    }

    fn reset_zero(&self, state: &mut ShardedStateVector) {
        state.reset_zero();
    }

    fn copy_into(&self, dst: &mut ShardedStateVector, src: &ShardedStateVector) {
        dst.copy_from(src);
    }

    fn copy_into_apply(
        &self,
        dst: &mut ShardedStateVector,
        src: &ShardedStateVector,
        head: &[tqsim_statevec::FusedOp],
    ) {
        dst.copy_from_apply(src, head);
    }

    fn state_bytes(&self, state: &ShardedStateVector) -> usize {
        state.bytes()
    }
}

impl std::fmt::Debug for ShardBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardBackend")
            .field("n_workers", &self.cluster.n_workers())
            .field("model", &self.model)
            .field("batching", &self.batching)
            .finish()
    }
}
