//! Shard process lifecycle and coordinator-side transport.
//!
//! [`ShardCluster::spawn`] launches one worker process per simulated node
//! on loopback TCP, performs the hello/topology handshake, and hands out a
//! shared handle the coordinator state ([`crate::ShardedStateVector`])
//! drives verbs through. All control traffic runs under one mutex so that
//! multi-node verbs are enqueued in the **same order on every worker's
//! FIFO control socket** — the invariant that keeps pairwise mesh
//! exchanges from cross-pairing when several engine threads drive states
//! concurrently.
//!
//! Transport failures (a worker process dying mid-job, an injected
//! `shard.transport` failpoint) surface as panics, exactly like the
//! in-process backend's `cluster.exchange` faults: the engine's per-task
//! panic isolation contains them to the running job, and the service's
//! retry/degradation ladder takes it from there.

use crate::proto;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use tqsim_circuit::math::C64;
use tqsim_json::{num_u64, obj, str_val, Value};

/// Locate (or build) the worker binary. Resolution order:
///
/// 1. `TQSIM_SHARD_WORKER_BIN` (explicit override, e.g. in CI);
/// 2. a `tqsim-shard-worker` binary next to any ancestor of the current
///    executable (covers `cargo test`/`cargo bench` runs, whose test
///    binaries live in `target/<profile>/deps/`);
/// 3. `cargo build -p tqsim-shard --bin tqsim-shard-worker`, matching the
///    current profile — dependent crates' test profiles don't build our
///    binary target, so build it once on demand.
fn worker_binary() -> &'static PathBuf {
    static BIN: OnceLock<PathBuf> = OnceLock::new();
    BIN.get_or_init(|| {
        if let Ok(path) = std::env::var("TQSIM_SHARD_WORKER_BIN") {
            return PathBuf::from(path);
        }
        let bin_name = format!("tqsim-shard-worker{}", std::env::consts::EXE_SUFFIX);
        let exe = std::env::current_exe().ok();
        if let Some(exe) = &exe {
            for dir in exe.ancestors().skip(1) {
                let candidate = dir.join(&bin_name);
                if candidate.is_file() {
                    return candidate;
                }
            }
        }
        let release = exe
            .as_deref()
            .map(|p| p.components().any(|c| c.as_os_str() == "release"))
            .unwrap_or(false);
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let mut cmd = Command::new(cargo);
        cmd.args(["build", "-p", "tqsim-shard", "--bin", "tqsim-shard-worker"])
            .current_dir(env!("CARGO_MANIFEST_DIR"));
        if release {
            cmd.arg("--release");
        }
        let status = cmd
            .status()
            .expect("failed to run cargo to build the shard worker");
        assert!(status.success(), "building the shard worker binary failed");
        let target = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target")
            .join(if release { "release" } else { "debug" })
            .join(&bin_name);
        assert!(
            target.is_file(),
            "built shard worker not found at {}",
            target.display()
        );
        target
    })
}

/// Panic on transport errors — the coordinator-side choke point every
/// control send/receive passes through. A worker process dying mid-job
/// surfaces here (broken pipe / EOF), unwinds the job's task, and is
/// contained by the engine's per-task panic isolation.
fn transport<T>(what: &str, result: io::Result<T>) -> T {
    result.unwrap_or_else(|e| panic!("shard transport: {what}: {e}"))
}

struct WorkerLink {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// The mutable half of the cluster, held under the transport mutex.
pub struct ClusterLink {
    links: Vec<WorkerLink>,
    children: Vec<Child>,
}

impl ClusterLink {
    /// Send `value` to worker `rank` (no reply expected).
    ///
    /// # Panics
    ///
    /// On transport faults (including injected `shard.transport` faults).
    pub fn send(&mut self, rank: usize, value: &Value) {
        transport(
            "send",
            proto::send_line(&mut self.links[rank].writer, value),
        );
    }

    /// Read one reply line from worker `rank`.
    ///
    /// # Panics
    ///
    /// On transport faults.
    pub fn recv(&mut self, rank: usize) -> Value {
        transport("recv", proto::recv_line(&mut self.links[rank].reader))
    }

    /// Send to every worker in rank order (no replies).
    pub fn broadcast(&mut self, value: &Value) {
        for rank in 0..self.links.len() {
            self.send(rank, value);
        }
    }

    /// Send to every worker, then collect one ack line from each.
    pub fn broadcast_ack(&mut self, value: &Value) {
        self.broadcast(value);
        for rank in 0..self.links.len() {
            self.recv(rank);
        }
    }

    /// Best-effort send that reports IO errors instead of panicking and
    /// skips the failpoint — for teardown traffic (slice frees) that must
    /// not blow up a `Drop` on an already-dead cluster.
    pub fn try_send(&mut self, rank: usize, value: &Value) -> io::Result<()> {
        proto::send_line(&mut self.links[rank].writer, value)
    }

    /// Send a query to `rank` and read its reply.
    pub fn request(&mut self, rank: usize, value: &Value) -> Value {
        self.send(rank, value);
        self.recv(rank)
    }

    /// Fetch worker `rank`'s amplitudes for slice `sid` (bulk binary).
    pub fn fetch(&mut self, rank: usize, sid: u64) -> Vec<C64> {
        let header = self.request(
            rank,
            &obj(vec![("v", str_val("fetch")), ("sid", num_u64(sid))]),
        );
        let len = header
            .get("len")
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("shard transport: malformed fetch header"));
        let amps = transport("fetch", proto::read_amps(&mut self.links[rank].reader));
        assert_eq!(amps.len() as u64, len, "fetch length mismatch");
        amps
    }
}

/// A running multi-process shard topology: worker child processes plus
/// their control sockets. Shared (`Arc`) between every state the
/// [`crate::ShardBackend`] allocates; dropped, it shuts the workers down.
pub struct ShardCluster {
    inner: Mutex<ClusterLink>,
    n_workers: usize,
    next_sid: AtomicU64,
}

impl ShardCluster {
    /// Spawn `n_workers` worker processes on loopback and complete the
    /// hello/topology handshake.
    ///
    /// # Errors
    ///
    /// Any spawn or handshake IO failure (workers spawned so far are
    /// killed on the way out).
    ///
    /// # Panics
    ///
    /// Panics if `n_workers` is not a power of two ≥ 1, or if the worker
    /// binary cannot be located or built.
    pub fn spawn(n_workers: usize) -> io::Result<ShardCluster> {
        assert!(
            n_workers >= 1 && n_workers.is_power_of_two(),
            "worker count {n_workers} is not a power of two >= 1"
        );
        let bin = worker_binary();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        let mut children: Vec<Child> = Vec::with_capacity(n_workers);
        let spawn_all = (|| {
            for rank in 0..n_workers {
                let child = Command::new(bin)
                    .args(["--coordinator", &addr])
                    .args(["--rank", &rank.to_string()])
                    .args(["--workers", &n_workers.to_string()])
                    .stdin(Stdio::null())
                    .stdout(Stdio::null())
                    .spawn()?;
                children.push(child);
            }
            // Collect hellos (arrival order is scheduling-dependent; place
            // each link by its self-reported rank) and announce the mesh
            // topology.
            let mut links: Vec<Option<(WorkerLink, String)>> =
                (0..n_workers).map(|_| None).collect();
            for _ in 0..n_workers {
                let (stream, _) = listener.accept()?;
                stream.set_nodelay(true)?;
                let mut reader = BufReader::new(stream.try_clone()?);
                let hello = proto::recv_line(&mut reader)?;
                let rank = hello
                    .get("rank")
                    .and_then(Value::as_u64)
                    .filter(|&r| (r as usize) < n_workers)
                    .ok_or_else(|| bad_hello("rank"))? as usize;
                let mesh = hello
                    .get("mesh")
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad_hello("mesh"))?
                    .to_string();
                if links[rank].is_some() {
                    return Err(bad_hello("duplicate rank"));
                }
                links[rank] = Some((
                    WorkerLink {
                        reader,
                        writer: BufWriter::new(stream),
                    },
                    mesh,
                ));
            }
            let mut links: Vec<(WorkerLink, String)> = links
                .into_iter()
                .map(|l| l.expect("all ranks seen"))
                .collect();
            let peers = Value::Arr(
                links
                    .iter()
                    .map(|(_, mesh)| str_val(mesh.as_str()))
                    .collect(),
            );
            let topo = obj(vec![("v", str_val("topo")), ("peers", peers)]);
            for (link, _) in links.iter_mut() {
                proto::send_line(&mut link.writer, &topo)?;
            }
            for (link, _) in links.iter_mut() {
                proto::recv_line(&mut link.reader)?;
            }
            Ok(links.into_iter().map(|(link, _)| link).collect::<Vec<_>>())
        })();
        match spawn_all {
            Ok(links) => Ok(ShardCluster {
                inner: Mutex::new(ClusterLink { links, children }),
                n_workers,
                next_sid: AtomicU64::new(1),
            }),
            Err(e) => {
                for child in &mut children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                Err(e)
            }
        }
    }

    /// Number of worker processes (= simulated nodes).
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Allocate a fresh slice id (coordinator-wide unique).
    pub fn next_sid(&self) -> u64 {
        self.next_sid.fetch_add(1, Ordering::Relaxed)
    }

    /// Lock the transport for one multi-node operation. Every verb (or
    /// atomic verb sequence, e.g. a dswap broadcast plus its acks) must
    /// run under a single lock acquisition so all workers enqueue
    /// multi-node operations in the same order.
    ///
    /// This is also the `shard.transport` failpoint: it fires **before**
    /// the lock is taken and before any bytes move, so an injected fault
    /// always leaves the wire between whole verbs — the faulted job dies,
    /// but the cluster stays protocol-consistent and the next attempt can
    /// run on it.
    ///
    /// # Panics
    ///
    /// Panics on an injected `shard.transport` fault.
    pub fn link(&self) -> MutexGuard<'_, ClusterLink> {
        if let Err(fault) = tqsim_faults::trigger("shard.transport") {
            panic!("{fault}");
        }
        self.link_quiet()
    }

    /// Failpoint-free transport acquisition, for teardown paths (state
    /// drops freeing slices) and chaos tooling that must not themselves
    /// trip injected faults.
    pub fn link_quiet(&self) -> MutexGuard<'_, ClusterLink> {
        // A panic mid-operation (killed worker) poisons the mutex; later
        // jobs still reach the transport and fail fast on the broken
        // sockets rather than panicking on the poison itself.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Round-trip a ping through every worker (spawn health check).
    ///
    /// # Panics
    ///
    /// On transport faults.
    pub fn ping(&self) {
        let mut link = self.link();
        link.broadcast_ack(&obj(vec![("v", str_val("ping"))]));
    }

    /// Kill worker `rank`'s process outright — the chaos hook for
    /// fault-containment tests (a real node failure mid-job). Subsequent
    /// traffic to that worker panics, which the engine contains to the
    /// running job.
    pub fn kill_worker(&self, rank: usize) {
        let mut link = self.link_quiet();
        let _ = link.children[rank].kill();
        let _ = link.children[rank].wait();
    }
}

fn bad_hello(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed shard hello ({what})"),
    )
}

impl Drop for ShardCluster {
    fn drop(&mut self) {
        let link = self.inner.get_mut().unwrap_or_else(|p| p.into_inner());
        // Polite shutdown first; workers also exit on control-socket EOF,
        // and kill/wait below reaps anything unresponsive.
        let bye = obj(vec![("v", str_val("bye"))]);
        for l in link.links.iter_mut() {
            let _ = proto::send_line(&mut l.writer, &bye);
        }
        for child in link.children.iter_mut() {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if std::time::Instant::now() < deadline => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for ShardCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShardCluster[{} workers]", self.n_workers)
    }
}
