//! Shard worker process entry point. Spawned by
//! `tqsim_shard::ShardCluster::spawn` as
//! `tqsim-shard-worker --coordinator <addr> --rank <r> --workers <n>`;
//! everything after argument parsing lives in `tqsim_shard::worker`.

use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: tqsim-shard-worker --coordinator <addr> --rank <r> --workers <n>");
    exit(2);
}

fn main() {
    let mut coordinator: Option<String> = None;
    let mut rank: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--coordinator" => coordinator = Some(value),
            "--rank" => rank = value.parse().ok(),
            "--workers" => workers = value.parse().ok(),
            _ => usage(),
        }
    }
    let (Some(coordinator), Some(rank), Some(workers)) = (coordinator, rank, workers) else {
        usage()
    };
    if let Err(e) = tqsim_shard::worker::run(&coordinator, rank, workers) {
        eprintln!("tqsim-shard-worker[{rank}]: {e}");
        exit(1);
    }
}
