//! The shard worker runtime: one OS process per simulated cluster node.
//!
//! A worker is deliberately *thin*. It owns the node's amplitude slices
//! (keyed by slice id) and applies statevector kernels on command; every
//! layout decision, counter, RNG draw and noise branch lives on the
//! coordinator, which is what keeps the multi-process backend bit-identical
//! to the in-process [`tqsim_cluster::DistributedStateVector`] — the worker
//! executes exactly the per-slice arithmetic the in-process node threads
//! would, in the same order.
//!
//! Control arrives as line-delimited JSON on the coordinator socket (FIFO
//! per worker; the coordinator broadcasts under one lock so every worker
//! sees multi-node verbs in the same order). Amplitude halves move over a
//! lazily-established worker↔worker TCP mesh as length-prefixed binary
//! frames; for each pair the lower rank connects and sends first, the
//! higher rank accepts and receives first, so the pairwise exchanges can
//! never deadlock.

use crate::proto;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use tqsim_circuit::math::{c64, C64};
use tqsim_json::{num, num_u64, obj, Value};
use tqsim_statevec::kernels;

/// A cached mesh connection to one peer worker.
struct MeshConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

struct Worker {
    rank: usize,
    listener: TcpListener,
    peers: Vec<String>,
    mesh: HashMap<usize, MeshConn>,
    slices: HashMap<u64, Vec<C64>>,
}

fn wire_err(context: &str, message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{context}: {message}"))
}

fn need_u64(v: &Value, key: &str) -> io::Result<u64> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| wire_err("shard verb", format!("missing numeric {key:?}")))
}

fn need_f64(v: &Value, key: &str) -> io::Result<f64> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| wire_err("shard verb", format!("missing numeric {key:?}")))
}

/// Run one worker process to completion: connect to `coordinator`, open
/// the mesh listener, handshake, and serve verbs until `bye` (or until the
/// coordinator vanishes, which is a normal shutdown for killed clusters).
///
/// # Errors
///
/// Transport or protocol errors other than the coordinator closing the
/// control socket.
pub fn run(coordinator: &str, rank: usize, n_workers: usize) -> io::Result<()> {
    let control = TcpStream::connect(coordinator)?;
    control.set_nodelay(true)?;
    let mut control_r = BufReader::new(control.try_clone()?);
    let mut control_w = BufWriter::new(control);
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let mesh_addr = listener.local_addr()?.to_string();
    proto::send_line(
        &mut control_w,
        &obj(vec![
            ("v", tqsim_json::str_val("hello")),
            ("rank", num_u64(rank as u64)),
            ("mesh", tqsim_json::str_val(&mesh_addr)),
        ]),
    )?;
    let topo = proto::recv_line(&mut control_r)?;
    if topo.get("v").and_then(Value::as_str) != Some("topo") {
        return Err(wire_err("handshake", "expected topo".into()));
    }
    let peers: Vec<String> = topo
        .get("peers")
        .and_then(Value::as_arr)
        .map(|a| {
            a.iter()
                .filter_map(|p| p.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    if peers.len() != n_workers {
        return Err(wire_err("handshake", "peer list length mismatch".into()));
    }
    proto::send_line(&mut control_w, &proto::ack())?;

    let mut worker = Worker {
        rank,
        listener,
        peers,
        mesh: HashMap::new(),
        slices: HashMap::new(),
    };
    loop {
        let msg = match proto::recv_line(&mut control_r) {
            Ok(msg) => msg,
            // The coordinator dropping the control socket (process exit,
            // cluster teardown without `bye`) is a normal shutdown.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        let verb = msg
            .get("v")
            .and_then(Value::as_str)
            .ok_or_else(|| wire_err("shard verb", "missing \"v\"".into()))?;
        if verb == "bye" {
            proto::send_line(&mut control_w, &proto::ack())?;
            return Ok(());
        }
        if let Some(reply) = worker.dispatch(verb, &msg, &mut control_w)? {
            proto::send_line(&mut control_w, &reply)?;
        }
    }
}

impl Worker {
    /// Node-local qubit count of a slice (its length is always `2^local_n`).
    fn local_n(slice: &[C64]) -> u16 {
        slice.len().trailing_zeros() as u16
    }

    fn slice_mut(&mut self, msg: &Value) -> io::Result<(u64, &mut Vec<C64>)> {
        let sid = need_u64(msg, "sid")?;
        let slice = self
            .slices
            .get_mut(&sid)
            .ok_or_else(|| wire_err("shard verb", format!("unknown slice {sid}")))?;
        Ok((sid, slice))
    }

    /// Handle one verb; `Some(reply)` is sent back on the control socket.
    fn dispatch(
        &mut self,
        verb: &str,
        msg: &Value,
        control_w: &mut BufWriter<TcpStream>,
    ) -> io::Result<Option<Value>> {
        match verb {
            "ping" => Ok(Some(proto::ack())),
            "alloc" => {
                let sid = need_u64(msg, "sid")?;
                let len = need_u64(msg, "len")? as usize;
                let mut slice = vec![c64(0.0, 0.0); len];
                if self.rank == 0 {
                    slice[0] = c64(1.0, 0.0);
                }
                self.slices.insert(sid, slice);
                Ok(Some(proto::ack()))
            }
            "reset" => {
                let rank = self.rank;
                let (_, slice) = self.slice_mut(msg)?;
                slice.fill(c64(0.0, 0.0));
                if rank == 0 {
                    slice[0] = c64(1.0, 0.0);
                }
                Ok(None)
            }
            "free" => {
                let sid = need_u64(msg, "sid")?;
                self.slices.remove(&sid);
                Ok(None)
            }
            "copy" => {
                let dst = need_u64(msg, "dst")?;
                let src = need_u64(msg, "src")?;
                let from = self
                    .slices
                    .get(&src)
                    .ok_or_else(|| wire_err("copy", format!("unknown source {src}")))?
                    .clone();
                let to = self
                    .slices
                    .get_mut(&dst)
                    .ok_or_else(|| wire_err("copy", format!("unknown destination {dst}")))?;
                to.copy_from_slice(&from);
                Ok(None)
            }
            "gate" => {
                let gate = proto::gate_from_value(
                    msg.get("g")
                        .ok_or_else(|| wire_err("gate", "no g".into()))?,
                )
                .map_err(|e| wire_err("gate", e))?;
                let (_, slice) = self.slice_mut(msg)?;
                kernels::apply_gate_amps(slice, &gate);
                Ok(None)
            }
            "mat2" => {
                let q = need_u64(msg, "q")? as usize;
                let m = proto::mat2_from_value(
                    msg.get("m")
                        .ok_or_else(|| wire_err("mat2", "no m".into()))?,
                )
                .map_err(|e| wire_err("mat2", e))?;
                let (_, slice) = self.slice_mut(msg)?;
                kernels::apply_mat2(slice, q, &m);
                Ok(None)
            }
            "mat4" => {
                let hi = need_u64(msg, "hi")? as usize;
                let lo = need_u64(msg, "lo")? as usize;
                let m = proto::mat4_from_value(
                    msg.get("m")
                        .ok_or_else(|| wire_err("mat4", "no m".into()))?,
                )
                .map_err(|e| wire_err("mat4", e))?;
                let (_, slice) = self.slice_mut(msg)?;
                kernels::apply_mat4(slice, hi, lo, &m);
                Ok(None)
            }
            "mat8" => {
                let q2 = need_u64(msg, "q2")? as usize;
                let q1 = need_u64(msg, "q1")? as usize;
                let q0 = need_u64(msg, "q0")? as usize;
                let m = proto::mat8_from_value(
                    msg.get("m")
                        .ok_or_else(|| wire_err("mat8", "no m".into()))?,
                )
                .map_err(|e| wire_err("mat8", e))?;
                let (_, slice) = self.slice_mut(msg)?;
                kernels::apply_mat8(slice, q2, q1, q0, &m);
                Ok(None)
            }
            "mat16" => {
                let qs = Self::need_qubits::<4>(msg)?;
                let m = proto::mat16_from_value(
                    msg.get("m")
                        .ok_or_else(|| wire_err("mat16", "no m".into()))?,
                )
                .map_err(|e| wire_err("mat16", e))?;
                let (_, slice) = self.slice_mut(msg)?;
                kernels::apply_mat16(slice, qs.map(|q| q as usize), &m);
                Ok(None)
            }
            "mat32" => {
                let qs = Self::need_qubits::<5>(msg)?;
                let m = proto::mat32_from_value(
                    msg.get("m")
                        .ok_or_else(|| wire_err("mat32", "no m".into()))?,
                )
                .map_err(|e| wire_err("mat32", e))?;
                let (_, slice) = self.slice_mut(msg)?;
                kernels::apply_mat32(slice, qs.map(|q| q as usize), &m);
                Ok(None)
            }
            "wapply" => {
                // Apply a fused window to this node's slice in place —
                // the cross-boundary tail for ranks the sampling walk
                // never reached.
                let window = Self::need_window(msg)?;
                let rank = self.rank;
                let (_, slice) = self.slice_mut(msg)?;
                let base = rank << Self::local_n(slice);
                tqsim_statevec::apply_window_amps(slice, base, &window);
                Ok(None)
            }
            "capply" => {
                // Copy-and-apply: overwrite dst with src and run the child
                // plan's head window in the same visit — the parent→child
                // copy that starts replay one pass ahead.
                let window = Self::need_window(msg)?;
                let dst = need_u64(msg, "dst")?;
                let src = need_u64(msg, "src")?;
                let from = self
                    .slices
                    .get(&src)
                    .ok_or_else(|| wire_err("capply", format!("unknown source {src}")))?
                    .clone();
                let rank = self.rank;
                let to = self
                    .slices
                    .get_mut(&dst)
                    .ok_or_else(|| wire_err("capply", format!("unknown destination {dst}")))?;
                to.copy_from_slice(&from);
                let base = rank << Self::local_n(to);
                tqsim_statevec::apply_window_amps(to, base, &window);
                Ok(None)
            }
            "fwalk" => {
                // Fused sampling chain link: apply the trailing window to
                // this slice, then resolve draws exactly like "walk" — the
                // |ψ|² read happens in the same visit that finished the
                // state.
                let window = Self::need_window(msg)?;
                let rank = self.rank;
                {
                    let (_, slice) = self.slice_mut(msg)?;
                    let base = rank << Self::local_n(slice);
                    tqsim_statevec::apply_window_amps(slice, base, &window);
                }
                self.walk_reply(msg)
            }
            "diagrun" => {
                let run = proto::diag_run_from_value(msg).map_err(|e| wire_err("diagrun", e))?;
                let rank = self.rank;
                let (_, slice) = self.slice_mut(msg)?;
                let base = rank << Self::local_n(slice);
                run.apply_offset(slice, base);
                Ok(None)
            }
            "diag1" => {
                let q = need_u64(msg, "q")? as usize;
                let d = proto::c64s_from_value(
                    msg.get("d")
                        .ok_or_else(|| wire_err("diag1", "no d".into()))?,
                    2,
                )
                .map_err(|e| wire_err("diag1", e))?;
                let (_, slice) = self.slice_mut(msg)?;
                kernels::apply_diag1(slice, q, d[0], d[1]);
                Ok(None)
            }
            "scale_bit" => {
                // Global diag1: multiply the whole slice by d0 or d1
                // depending on this node's bit in the mask.
                let mask = need_u64(msg, "mask")? as usize;
                let d = proto::c64s_from_value(
                    msg.get("d")
                        .ok_or_else(|| wire_err("scale_bit", "no d".into()))?,
                    2,
                )
                .map_err(|e| wire_err("scale_bit", e))?;
                let rank = self.rank;
                let (_, slice) = self.slice_mut(msg)?;
                let dd = if rank & mask != 0 { d[1] } else { d[0] };
                for a in slice.iter_mut() {
                    *a *= dd;
                }
                Ok(None)
            }
            "antidiag" => {
                let q = need_u64(msg, "q")? as usize;
                let a = proto::c64s_from_value(
                    msg.get("a")
                        .ok_or_else(|| wire_err("antidiag", "no a".into()))?,
                    2,
                )
                .map_err(|e| wire_err("antidiag", e))?;
                let (_, slice) = self.slice_mut(msg)?;
                kernels::apply_antidiag1(slice, q, a[0], a[1]);
                Ok(None)
            }
            "antidiag_g" => {
                let step = need_u64(msg, "step")? as usize;
                let a = proto::c64s_from_value(
                    msg.get("a")
                        .ok_or_else(|| wire_err("antidiag_g", "no a".into()))?,
                    2,
                )
                .map_err(|e| wire_err("antidiag_g", e))?;
                self.antidiag_global(msg, step, a[0], a[1])?;
                Ok(Some(proto::ack()))
            }
            "dswap" => {
                let gb = need_u64(msg, "gb")? as u16;
                let lq = need_u64(msg, "lq")? as u16;
                self.dswap(msg, gb, lq)?;
                Ok(Some(proto::ack()))
            }
            "scale" => {
                let s = need_f64(msg, "s")?;
                let (_, slice) = self.slice_mut(msg)?;
                for amp in slice.iter_mut() {
                    *amp *= s;
                }
                Ok(None)
            }
            "psum" => {
                let (_, slice) = self.slice_mut(msg)?;
                let sum: f64 = slice.iter().map(|a| a.norm_sqr()).sum();
                Ok(Some(obj(vec![("x", num(sum))])))
            }
            "msum" => {
                // Local-marginal chain link: continue the coordinator's
                // single flat accumulator over this slice's filtered
                // amplitudes — the exact addition sequence of the
                // in-process backend's one-pass sum.
                let q = need_u64(msg, "q")? as usize;
                let mut acc = need_f64(msg, "acc")?;
                let (_, slice) = self.slice_mut(msg)?;
                let mask = 1usize << q;
                for (i, amp) in slice.iter().enumerate() {
                    if i & mask != 0 {
                        acc += amp.norm_sqr();
                    }
                }
                Ok(Some(obj(vec![("x", num(acc))])))
            }
            "pick" => {
                // Single-draw CDF chain link (see the coordinator's
                // `sample_with`): either a hit inside this slice or the
                // accumulator to hand to the next node.
                let u = need_f64(msg, "u")?;
                let mut acc = need_f64(msg, "acc")?;
                let rank = self.rank;
                let (_, slice) = self.slice_mut(msg)?;
                let base = (rank as u64) << Self::local_n(slice);
                for (i, amp) in slice.iter().enumerate() {
                    acc += amp.norm_sqr();
                    if u < acc {
                        return Ok(Some(obj(vec![("hit", num_u64(base | i as u64))])));
                    }
                }
                Ok(Some(obj(vec![("x", num(acc))])))
            }
            "walk" => self.walk_reply(msg),
            "fetch" => {
                let (_, slice) = self.slice_mut(msg)?;
                let len = slice.len();
                let amps = slice.clone();
                proto::send_line(control_w, &obj(vec![("len", num_u64(len as u64))]))?;
                proto::write_amps(control_w, &amps)?;
                Ok(None)
            }
            other => Err(wire_err("shard verb", format!("unknown verb {other:?}"))),
        }
    }

    /// Decode a fixed-width qubit list from the verb's `"qs"` field.
    fn need_qubits<const W: usize>(msg: &Value) -> io::Result<[u16; W]> {
        let arr = msg
            .get("qs")
            .and_then(Value::as_arr)
            .ok_or_else(|| wire_err("shard verb", "missing qs".into()))?;
        if arr.len() != W {
            return Err(wire_err("shard verb", format!("expected {W} qubits")));
        }
        let mut qs = [0u16; W];
        for (dst, v) in qs.iter_mut().zip(arr) {
            *dst = v
                .as_u64()
                .and_then(|q| u16::try_from(q).ok())
                .ok_or_else(|| wire_err("shard verb", "bad qubit".into()))?;
        }
        Ok(qs)
    }

    /// Decode the fused window from the verb's `"w"` field.
    fn need_window(msg: &Value) -> io::Result<Vec<tqsim_statevec::FusedOp>> {
        proto::window_from_value(
            msg.get("w")
                .ok_or_else(|| wire_err("shard verb", "missing w".into()))?,
        )
        .map_err(|e| wire_err("window", e))
    }

    /// Batched sorted-CDF chain link (see the coordinator's `sample_many`):
    /// resolve as many sorted draws as land in this slice, then hand
    /// (idx, acc) to the next node. Shared by "walk" and "fwalk".
    fn walk_reply(&mut self, msg: &Value) -> io::Result<Option<Value>> {
        let us: Vec<f64> = msg
            .get("us")
            .and_then(Value::as_arr)
            .ok_or_else(|| wire_err("walk", "no us".into()))?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| wire_err("walk", "bad u".into())))
            .collect::<io::Result<_>>()?;
        let mut idx = need_u64(msg, "idx")? as usize;
        let mut acc = need_f64(msg, "acc")?;
        let total = need_u64(msg, "total")? as usize;
        let init = msg.get("init").and_then(Value::as_bool).unwrap_or(false);
        let rank = self.rank;
        let (_, slice) = self.slice_mut(msg)?;
        let base = rank << Self::local_n(slice);
        if init {
            idx = 0;
            acc = slice[0].norm_sqr();
        }
        let mut out = Vec::new();
        for &u in &us {
            while u >= acc && idx + 1 < total && idx + 1 < base + slice.len() {
                idx += 1;
                acc += slice[idx - base].norm_sqr();
            }
            if u < acc || idx + 1 >= total {
                out.push(num_u64(idx as u64));
            } else {
                break;
            }
        }
        Ok(Some(obj(vec![
            ("out", Value::Arr(out)),
            ("idx", num_u64(idx as u64)),
            ("acc", num(acc)),
        ])))
    }

    /// Get (establishing if necessary) the mesh connection to `peer`. The
    /// lower rank dials; the higher rank accepts, identifying inbound
    /// connections by their hello line. Pairings are disjoint per exchange
    /// round, so accept-until-found cannot starve.
    fn mesh_with(&mut self, peer: usize) -> io::Result<&mut MeshConn> {
        if !self.mesh.contains_key(&peer) {
            if self.rank < peer {
                let stream = TcpStream::connect(&self.peers[peer])?;
                stream.set_nodelay(true)?;
                let mut writer = BufWriter::new(stream.try_clone()?);
                proto::send_line(&mut writer, &obj(vec![("rank", num_u64(self.rank as u64))]))?;
                self.mesh.insert(
                    peer,
                    MeshConn {
                        reader: BufReader::new(stream),
                        writer,
                    },
                );
            } else {
                loop {
                    let (stream, _) = self.listener.accept()?;
                    stream.set_nodelay(true)?;
                    let mut reader = BufReader::new(stream.try_clone()?);
                    let hello = proto::recv_line(&mut reader)?;
                    let from = need_u64(&hello, "rank")? as usize;
                    self.mesh.insert(
                        from,
                        MeshConn {
                            reader,
                            writer: BufWriter::new(stream),
                        },
                    );
                    if from == peer {
                        break;
                    }
                }
            }
        }
        Ok(self.mesh.get_mut(&peer).expect("just inserted"))
    }

    /// One distributed swap: exchange this node's half-slice with its
    /// partner's, mirroring the in-process `exchange_halves` exactly — the
    /// lower node's `lq`-bit=1 half swaps with the higher node's bit=0
    /// half, walked in the same index order on both ends.
    fn dswap(&mut self, msg: &Value, gb: u16, lq: u16) -> io::Result<()> {
        let partner = self.rank ^ (1usize << gb);
        let sl = 1usize << lq;
        let (sid, slice) = self.slice_mut(msg)?;
        let mut slice = std::mem::take(slice);
        // Lower node trades the bit-set half; higher node the bit-clear.
        let send_set = self.rank < partner;
        let offset = if send_set { sl } else { 0 };
        let mut half = Vec::with_capacity(slice.len() / 2);
        let mut base = 0;
        while base < slice.len() {
            half.extend_from_slice(&slice[base + offset..base + offset + sl]);
            base += sl * 2;
        }
        let outcome = (|| {
            let conn = self.mesh_with(partner)?;
            let incoming = if send_set {
                proto::write_amps(&mut conn.writer, &half)?;
                proto::read_amps(&mut conn.reader)?
            } else {
                let incoming = proto::read_amps(&mut conn.reader)?;
                proto::write_amps(&mut conn.writer, &half)?;
                incoming
            };
            if incoming.len() != half.len() {
                return Err(wire_err("dswap", "half-slice length mismatch".into()));
            }
            let mut base = 0;
            let mut taken = 0;
            while base < slice.len() {
                slice[base + offset..base + offset + sl]
                    .copy_from_slice(&incoming[taken..taken + sl]);
                base += sl * 2;
                taken += sl;
            }
            Ok(())
        })();
        self.slices.insert(sid, slice);
        outcome
    }

    /// One global antidiagonal combine: swap full slices with the partner
    /// and apply `lo' = a01·hi`, `hi' = a10·lo`.
    fn antidiag_global(&mut self, msg: &Value, step: usize, a01: C64, a10: C64) -> io::Result<()> {
        let partner = self.rank ^ step;
        let is_lo = self.rank < partner;
        let (sid, slice) = self.slice_mut(msg)?;
        let mut slice = std::mem::take(slice);
        let outcome = (|| {
            let conn = self.mesh_with(partner)?;
            let incoming = if is_lo {
                proto::write_amps(&mut conn.writer, &slice)?;
                proto::read_amps(&mut conn.reader)?
            } else {
                let incoming = proto::read_amps(&mut conn.reader)?;
                proto::write_amps(&mut conn.writer, &slice)?;
                incoming
            };
            if incoming.len() != slice.len() {
                return Err(wire_err("antidiag_g", "slice length mismatch".into()));
            }
            let d = if is_lo { a01 } else { a10 };
            for (mine, theirs) in slice.iter_mut().zip(incoming.iter()) {
                *mine = d * *theirs;
            }
            Ok(())
        })();
        self.slices.insert(sid, slice);
        outcome
    }
}
