//! Cross-process bit-identity: the multi-process shard backend must be
//! indistinguishable — amplitudes, `Counts`, deterministic cluster
//! counters, exchange schedules — from the in-process distributed state
//! vector it mirrors, at 2 and 4 shards, with and without noise, with and
//! without exchange batching. Only `measured_exchange_seconds` may (and
//! must) differ: here it times real TCP round-trips.

use std::sync::Arc;
use tqsim::Strategy;
use tqsim_circuit::generators;
use tqsim_circuit::Circuit;
use tqsim_cluster::{DistributedStateVector, InterconnectModel};
use tqsim_engine::{Engine, EngineConfig, JobPlan, PlannedJob};
use tqsim_noise::NoiseModel;
use tqsim_shard::{ShardBackend, ShardCluster, ShardedStateVector};
use tqsim_statevec::QuantumState;

fn model() -> InterconnectModel {
    InterconnectModel::commodity_cluster()
}

#[test]
fn state_level_amplitudes_and_counters_match_in_process() {
    // Drive the identical op stream through a 4-process shard state and
    // the 4-thread in-process DSV: every amplitude bit, every
    // deterministic counter, and every floating-point reduction must
    // agree exactly.
    let cluster = Arc::new(ShardCluster::spawn(4).expect("spawn workers"));
    let mut shard = ShardedStateVector::zero(Arc::clone(&cluster), 8, model()).unwrap();
    let mut dsv = DistributedStateVector::zero(8, 4, model()).unwrap();

    let circuit = generators::qsc(8, 40, 3);
    for gate in &circuit {
        shard.apply_gate(gate);
        dsv.apply_gate(gate);
    }
    assert_eq!(
        shard.gather().amplitudes(),
        dsv.gather().amplitudes(),
        "amplitudes must match bit for bit after the gate stream"
    );

    // Noise-surface ops, including global-qubit (anti)diagonals and the
    // renormalisation that follows a Kraus branch.
    for q in [0u16, 5, 6, 7] {
        assert_eq!(
            shard.marginal_one(q).to_bits(),
            dsv.marginal_one(q).to_bits()
        );
    }
    let d0 = tqsim_circuit::math::c64(0.9, 0.0);
    let d1 = tqsim_circuit::math::c64(0.0, 0.4);
    for q in [1u16, 7] {
        shard.apply_diag1(q, d0, d1);
        dsv.apply_diag1(q, d0, d1);
    }
    for q in [2u16, 6] {
        shard.apply_antidiag1(q, d1, d0);
        dsv.apply_antidiag1(q, d1, d0);
    }
    shard.renormalize();
    dsv.renormalize();
    assert_eq!(shard.norm_sqr().to_bits(), dsv.norm_sqr().to_bits());
    assert_eq!(shard.gather().amplitudes(), dsv.gather().amplitudes());

    // Sampling: the chained CDF walks must consume draws identically.
    let us: Vec<f64> = (0..32).map(|i| (i as f64 + 0.37) / 32.0).collect();
    assert_eq!(shard.sample_many(&us), dsv.sample_many(&us));
    assert_eq!(shard.sample_with(0.123456789), dsv.sample_with(0.123456789));

    // Deterministic counters agree exactly (`PartialEq` on the counters
    // excludes the wall-clock field)…
    assert_eq!(shard.counters, dsv.counters);
    assert!(shard.counters.exchanges > 0, "qsc must hit global qubits");
    // …while the shard's measured exchange time is real elapsed wall
    // clock on a real wire, so it must actually accumulate.
    assert!(
        shard.counters.measured_exchange_seconds > 0.0,
        "TCP exchanges take nonzero wall-clock time"
    );
}

#[test]
fn engine_counts_bit_identical_across_backends_ideal_and_noisy() {
    // The tentpole invariant, one level up: a planned job run through the
    // engine produces identical Counts on the single-node backend, the
    // in-process cluster backend, and real worker processes — at 2 and 4
    // shards, with and without noise.
    for noise in [NoiseModel::ideal(), NoiseModel::sycamore()] {
        let circuit = generators::qft(8);
        let plan = Arc::new(
            JobPlan::plan(
                &circuit,
                &noise,
                24,
                &Strategy::Custom {
                    arities: vec![4, 3, 2],
                },
            )
            .unwrap(),
        );
        let reference = Engine::new(EngineConfig::default().parallelism(1))
            .run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(7));
        for workers in [2usize, 4] {
            let backend = ShardBackend::spawn(workers).expect("spawn workers");
            let engine = Engine::with_backend(EngineConfig::default().parallelism(2), backend);
            let r = engine.run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(7));
            assert_eq!(r.counts, reference.counts, "{workers} shard processes");
            assert_eq!(r.ops, reference.ops, "{workers} shard processes");
            let stats = engine.pool_stats();
            assert_eq!(stats.outstanding, 0, "every sharded buffer returned");
        }
    }
}

/// A workload whose dense ops straddle the node boundary in runs: rounds
/// of cx(7, t) ladders (same global qubit) with a per-round local
/// conflict on the scratch qubit, so eager mode pays two exchanges per
/// gate while batching pays two per run.
fn boundary_ladder() -> Circuit {
    let mut c = Circuit::new(8);
    for _ in 0..3 {
        for t in 0..4 {
            c.cx(7, t);
        }
        c.h(5);
    }
    c
}

#[test]
fn batched_execution_matches_eager_and_in_process_with_fewer_exchanges() {
    let circuit = boundary_ladder();

    let cluster = Arc::new(ShardCluster::spawn(4).expect("spawn workers"));
    let mut eager = ShardedStateVector::zero(Arc::clone(&cluster), 8, model()).unwrap();
    let mut batched = ShardedStateVector::zero(Arc::clone(&cluster), 8, model()).unwrap();
    batched.set_exchange_batching(true);
    let mut dsv_eager = DistributedStateVector::zero(8, 4, model()).unwrap();
    let mut dsv_batched = DistributedStateVector::zero(8, 4, model()).unwrap();
    dsv_batched.set_exchange_batching(true);

    for gate in &circuit {
        eager.apply_gate(gate);
        batched.apply_gate(gate);
        dsv_eager.apply_gate(gate);
        dsv_batched.apply_gate(gate);
    }
    batched.sync_layout();
    dsv_batched.sync_layout();

    let amps = eager.gather();
    assert_eq!(batched.gather().amplitudes(), amps.amplitudes());
    assert_eq!(dsv_eager.gather().amplitudes(), amps.amplitudes());
    assert_eq!(dsv_batched.gather().amplitudes(), amps.amplitudes());

    // Exchange schedules — not just totals — are shared with the
    // in-process backend through the same layout tracker.
    assert_eq!(eager.counters, dsv_eager.counters);
    assert_eq!(batched.counters, dsv_batched.counters);
    assert!(
        batched.counters.exchanges * 2 <= eager.counters.exchanges,
        "batching must at least halve exchanges on a boundary ladder \
         (batched {} vs eager {})",
        batched.counters.exchanges,
        eager.counters.exchanges
    );
}

#[test]
fn batched_backend_counts_match_under_the_engine() {
    // Exchange batching composes with plan replay + noise: the engine's
    // Counts are unchanged when the shard backend defers swap-backs.
    let circuit = boundary_ladder();
    let plan = Arc::new(
        JobPlan::plan(
            &circuit,
            &NoiseModel::sycamore(),
            16,
            &Strategy::Custom {
                arities: vec![3, 2],
            },
        )
        .unwrap(),
    );
    let reference = Engine::new(EngineConfig::default().parallelism(1))
        .run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(11));
    let backend = ShardBackend::spawn(2)
        .expect("spawn workers")
        .exchange_batching(true);
    let engine = Engine::with_backend(EngineConfig::default().parallelism(2), backend);
    let r = engine.run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(11));
    assert_eq!(r.counts, reference.counts);
    assert_eq!(r.ops, reference.ops);
}
