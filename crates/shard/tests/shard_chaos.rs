//! Fault containment for the multi-process transport: an injected
//! `shard.transport` fault or a worker process killed mid-job must fail
//! only the running job — the coordinator process survives, fresh
//! topologies work, and (for injected faults, which fire before any bytes
//! move) the *same* cluster keeps working.
//!
//! The failpoint registry is process-global, so tests that arm sites
//! serialize on one gate and reset the registry on entry.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use tqsim::Strategy;
use tqsim_circuit::generators;
use tqsim_engine::{Engine, EngineConfig, JobPlan, PlannedJob};
use tqsim_faults::FaultConfig;
use tqsim_noise::NoiseModel;
use tqsim_shard::ShardBackend;

fn chaos_gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    let gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    tqsim_faults::reset_all();
    quiet_panics();
    gate
}

/// Panics are expected output here (injected faults and transport errors
/// from killed workers); keep the default hook from spamming stderr.
fn quiet_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let expected = info.payload().downcast_ref::<String>().is_some_and(|msg| {
                msg.contains("injected fault at failpoint") || msg.contains("shard transport")
            }) || info.payload().is::<tqsim_faults::FaultError>();
            if !expected {
                previous(info);
            }
        }));
    });
}

struct ResetOnDrop;
impl Drop for ResetOnDrop {
    fn drop(&mut self) {
        tqsim_faults::reset_all();
    }
}

fn qft_plan(shots: u64) -> Arc<JobPlan> {
    Arc::new(
        JobPlan::plan(
            &generators::qft(8),
            &NoiseModel::sycamore(),
            shots,
            &Strategy::Custom {
                arities: vec![3, 2],
            },
        )
        .unwrap(),
    )
}

#[test]
fn transport_failpoint_fails_the_job_and_the_same_cluster_recovers() {
    let _gate = chaos_gate();
    let _reset = ResetOnDrop;
    let plan = qft_plan(16);
    let reference = Engine::new(EngineConfig::default().parallelism(1))
        .run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(7));

    let backend = ShardBackend::spawn(2).expect("spawn workers");
    let engine = Engine::with_backend(EngineConfig::default().parallelism(1), backend);

    // Injected faults fire before any bytes move, so the faulted job dies
    // but the wire stays between whole verbs.
    tqsim_faults::configure("shard.transport", FaultConfig::panic().nth(3));
    let faulted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(7))
    }));
    assert!(faulted.is_err(), "the faulted job must not return a result");
    assert_eq!(tqsim_faults::fired("shard.transport"), 1);
    tqsim_faults::disarm("shard.transport");

    // Same engine, same worker processes: the retry is bit-identical.
    let retried = engine.run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(7));
    assert_eq!(retried.counts, reference.counts);
    assert_eq!(retried.ops, reference.ops);
}

#[test]
fn killed_worker_fails_the_job_but_not_the_coordinator() {
    let _gate = chaos_gate();
    let plan = qft_plan(12);
    let reference = Engine::new(EngineConfig::default().parallelism(1))
        .run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(5));

    let backend = ShardBackend::spawn(2).expect("spawn workers");
    let engine = Engine::with_backend(EngineConfig::default().parallelism(1), backend.clone());
    let healthy = engine.run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(5));
    assert_eq!(healthy.counts, reference.counts);

    // A real node failure: kill one worker process outright. The next job
    // hits a broken pipe / EOF, panics on the driving task, and is
    // contained there — the coordinator process survives.
    backend.cluster().kill_worker(1);
    let dead = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(5))
    }));
    assert!(dead.is_err(), "a job on a dead topology must fail");

    // Fresh worker processes recover service, bit-identically.
    let fresh = ShardBackend::spawn(2).expect("respawn workers");
    let engine2 = Engine::with_backend(EngineConfig::default().parallelism(1), fresh);
    let recovered = engine2.run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(5));
    assert_eq!(recovered.counts, reference.counts);
    assert_eq!(recovered.ops, reference.ops);
}
