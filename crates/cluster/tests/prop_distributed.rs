//! Property-based equivalence of the distributed engine against the
//! single-node engine on randomised circuits and node counts.

use proptest::prelude::*;
use tqsim_circuit::{Circuit, Gate, GateKind};
use tqsim_cluster::{DistributedStateVector, InterconnectModel};
use tqsim_statevec::{QuantumState, StateVector};

fn arb_gate(n: u16) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    prop_oneof![
        (q.clone(), 0usize..6).prop_map(move |(q, k)| {
            let kind = [
                GateKind::X,
                GateKind::H,
                GateKind::S,
                GateKind::T,
                GateKind::Sx,
                GateKind::Y,
            ][k];
            Gate::new(kind, &[q])
        }),
        (q.clone(), -3.2f64..3.2).prop_map(move |(q, t)| Gate::new(GateKind::Ry(t), &[q])),
        (q.clone(), q.clone(), 0usize..3).prop_filter_map("distinct", move |(a, b, k)| {
            if a == b {
                return None;
            }
            Some(Gate::new(
                [GateKind::Cx, GateKind::Cz, GateKind::Swap][k],
                &[a, b],
            ))
        }),
        (q.clone(), q.clone(), q).prop_filter_map("distinct", move |(a, b, c)| {
            if a == b || b == c || a == c {
                return None;
            }
            Some(Gate::new(GateKind::Ccx, &[a, b, c]))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn distributed_matches_single_node_on_random_circuits(
        gates in prop::collection::vec(arb_gate(7), 1..30),
        g in 0u32..3, // 1, 2 or 4 nodes
    ) {
        let nodes = 1usize << g;
        let mut circuit = Circuit::new(7);
        for gate in &gates {
            circuit.push(*gate.kind(), gate.qubits());
        }
        let mut reference = StateVector::zero(7);
        reference.apply_circuit(&circuit);

        let model = InterconnectModel::commodity_cluster();
        let mut dsv = DistributedStateVector::zero(7, nodes, model).unwrap();
        for gate in &circuit {
            dsv.apply_gate(gate);
        }
        let gathered = dsv.gather();
        for (i, (a, b)) in gathered.amplitudes().iter().zip(reference.amplitudes()).enumerate() {
            prop_assert!((a - b).norm() < 1e-9, "amp {i}: {a} vs {b}");
        }
        prop_assert!((dsv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distributed_diag_ops_match(
        gates in prop::collection::vec(arb_gate(6), 1..15),
        q in 0u16..6,
        d0r in 0.1f64..1.0,
        d1r in 0.1f64..1.0,
    ) {
        use tqsim_circuit::c64;
        let mut circuit = Circuit::new(6);
        for gate in &gates {
            circuit.push(*gate.kind(), gate.qubits());
        }
        let model = InterconnectModel::commodity_cluster();
        let mut sv = StateVector::zero(6);
        sv.apply_circuit(&circuit);
        let mut dsv = DistributedStateVector::zero(6, 8, model).unwrap();
        for gate in &circuit {
            dsv.apply_gate(gate);
        }
        sv.apply_diag1(q, c64(d0r, 0.0), c64(0.0, d1r));
        dsv.apply_diag1(q, c64(d0r, 0.0), c64(0.0, d1r));
        sv.apply_antidiag1(q, c64(0.3, 0.0), c64(0.0, 0.7));
        dsv.apply_antidiag1(q, c64(0.3, 0.0), c64(0.0, 0.7));
        let gathered = dsv.gather();
        for (a, b) in gathered.amplitudes().iter().zip(sv.amplitudes()) {
            prop_assert!((a - b).norm() < 1e-9);
        }
    }

    #[test]
    fn distributed_marginals_match(
        gates in prop::collection::vec(arb_gate(6), 1..15),
        q in 0u16..6,
    ) {
        let mut circuit = Circuit::new(6);
        for gate in &gates {
            circuit.push(*gate.kind(), gate.qubits());
        }
        let model = InterconnectModel::commodity_cluster();
        let mut sv = StateVector::zero(6);
        sv.apply_circuit(&circuit);
        let mut dsv = DistributedStateVector::zero(6, 4, model).unwrap();
        for gate in &circuit {
            dsv.apply_gate(gate);
        }
        prop_assert!(
            (QuantumState::marginal_one(&dsv, q) - sv.marginal_one(q)).abs() < 1e-10
        );
    }

    #[test]
    fn sampling_agrees_for_any_draw(
        gates in prop::collection::vec(arb_gate(6), 1..15),
        u in 0.0f64..1.0,
    ) {
        let mut circuit = Circuit::new(6);
        for gate in &gates {
            circuit.push(*gate.kind(), gate.qubits());
        }
        let model = InterconnectModel::commodity_cluster();
        let mut dsv = DistributedStateVector::zero(6, 4, model).unwrap();
        for gate in &circuit {
            dsv.apply_gate(gate);
        }
        let gathered = dsv.gather();
        prop_assert_eq!(dsv.sample_with(u), gathered.sample_with(u));
    }
}
