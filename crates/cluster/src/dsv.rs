//! The distributed state vector: qHiPSTER-style node slices.
//!
//! The full `2^n` amplitude array is split across `2^g` nodes; node `i`
//! holds the contiguous slice of global indices `i·2^{n−g} .. (i+1)·2^{n−g}`,
//! i.e. the **top `g` qubits select the node**. Gates on local (low) qubits
//! run embarrassingly parallel, one thread per node; gates touching a global
//! qubit are handled the way real distributed simulators do it — a
//! *distributed swap* brings the global qubit down to a scratch local qubit
//! (one pairwise half-slice exchange each way), the gate runs locally, and
//! the swap is undone. Every exchange is counted and priced by the
//! [`InterconnectModel`].

use crate::layout::{DensePlan, LayoutTracker};
use crate::model::{ClusterCounters, InterconnectModel};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;
use tqsim_obs::{Counter, Registry};

/// Below this per-node slice length, node work runs on the calling thread —
/// the semantics are identical and thread-spawn overhead would dominate.
const THREAD_MIN_SLICE: usize = 1 << 12;
use tqsim_circuit::math::{c64, Mat16, Mat2, Mat32, Mat4, Mat8, C64};
use tqsim_circuit::Gate;
use tqsim_statevec::{kernels, DiagRun, PooledBackend, QuantumState, StateVector};

/// Error constructing a [`DistributedStateVector`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// Node count must be a power of two ≥ 1.
    BadNodeCount(usize),
    /// Each node must keep at least 2^3 amplitudes so three-qubit gates can
    /// be remapped locally.
    TooFewLocalQubits {
        /// Requested register width.
        n_qubits: u16,
        /// Requested node count.
        n_nodes: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::BadNodeCount(n) => {
                write!(f, "node count {n} is not a power of two >= 1")
            }
            ClusterError::TooFewLocalQubits { n_qubits, n_nodes } => write!(
                f,
                "{n_qubits} qubits over {n_nodes} nodes leaves fewer than 3 local qubits"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Live observability counters for distributed execution, shared by every
/// state an observed [`ClusterBackend`] allocates. Unlike the per-state
/// [`ClusterCounters`] (which travel with each [`DistributedStateVector`]
/// and merge into run results), these are global monotonic totals held in a
/// [`tqsim_obs::Registry`] — a monitoring view across all runs.
#[derive(Debug)]
pub struct ClusterObs {
    /// Pairwise half-slice exchange rounds (distributed swaps and
    /// cross-node antidiagonal combines).
    pub exchanges: Arc<Counter>,
    /// Modeled bytes moved over the interconnect.
    pub bytes_exchanged: Arc<Counter>,
    /// Gates applied without communication (all qubits node-local).
    pub local_gates: Arc<Counter>,
    /// Gates that needed a global→local remap (distributed swaps each way).
    pub remapped_gates: Arc<Counter>,
    /// Parent→child intermediate-state copies (node-local memcpys).
    pub state_copies: Arc<Counter>,
    /// **Measured** nanoseconds spent in exchange rounds (wall-clock).
    pub exchange_measured_ns: Arc<Counter>,
    /// **Modeled** nanoseconds the interconnect model prices the same
    /// exchange rounds at — exposed next to the measured total so
    /// model-vs-measured drift is one division away in the exposition.
    pub exchange_simulated_ns: Arc<Counter>,
}

impl ClusterObs {
    /// Register the cluster counter set in `registry`. Metric names are
    /// fixed (`tqsim_cluster_*_total`), so registering twice against the
    /// same registry yields handles to the same underlying counters.
    pub fn register(registry: &Registry) -> Arc<Self> {
        Arc::new(ClusterObs {
            exchanges: registry.counter("tqsim_cluster_exchanges_total", &[]),
            bytes_exchanged: registry.counter("tqsim_cluster_bytes_exchanged_total", &[]),
            local_gates: registry.counter("tqsim_cluster_local_gates_total", &[]),
            remapped_gates: registry.counter("tqsim_cluster_remapped_gates_total", &[]),
            state_copies: registry.counter("tqsim_cluster_state_copies_total", &[]),
            exchange_measured_ns: registry.counter("tqsim_cluster_exchange_measured_ns_total", &[]),
            exchange_simulated_ns: registry
                .counter("tqsim_cluster_exchange_simulated_ns_total", &[]),
        })
    }

    /// Record one exchange round: count, bytes, and measured vs modeled
    /// time (both in nanoseconds, saturating at u64).
    pub fn note_exchange(&self, bytes: u64, measured_s: f64, simulated_s: f64) {
        self.exchanges.inc();
        self.bytes_exchanged.add(bytes);
        self.exchange_measured_ns.add((measured_s * 1e9) as u64);
        self.exchange_simulated_ns.add((simulated_s * 1e9) as u64);
    }
}

/// A pure state distributed over `2^g` simulated nodes.
pub struct DistributedStateVector {
    n_qubits: u16,
    g: u16,
    local_n: u16,
    slices: Vec<Vec<C64>>,
    model: InterconnectModel,
    /// Operation counters, including modeled cluster time.
    pub counters: ClusterCounters,
    obs: Option<Arc<ClusterObs>>,
    /// Exchange batching: defer dswap undos across runs of compatible ops
    /// (qsim-style global gate scheduling). Off by default — eager mode is
    /// the counted baseline every existing estimator test is pinned to.
    batching: bool,
    layout: LayoutTracker,
}

impl DistributedStateVector {
    /// `|0…0⟩` over `n_nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError`] unless `n_nodes` is a power of two and at
    /// least 3 qubits remain node-local.
    pub fn zero(
        n_qubits: u16,
        n_nodes: usize,
        model: InterconnectModel,
    ) -> Result<Self, ClusterError> {
        check_layout(n_qubits, n_nodes)?;
        let g = n_nodes.trailing_zeros() as u16;
        let local_n = n_qubits - g;
        let slice_len = 1usize << local_n;
        let mut slices = vec![vec![c64(0.0, 0.0); slice_len]; n_nodes];
        slices[0][0] = c64(1.0, 0.0);
        Ok(DistributedStateVector {
            n_qubits,
            g,
            local_n,
            slices,
            model,
            counters: ClusterCounters::default(),
            obs: None,
            batching: false,
            layout: LayoutTracker::new(n_qubits, local_n),
        })
    }

    /// Scatter an existing single-node state across the cluster.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DistributedStateVector::zero`].
    pub fn from_statevector(
        sv: &StateVector,
        n_nodes: usize,
        model: InterconnectModel,
    ) -> Result<Self, ClusterError> {
        let mut dsv = Self::zero(sv.n_qubits(), n_nodes, model)?;
        let slice_len = dsv.slice_len();
        for (i, slice) in dsv.slices.iter_mut().enumerate() {
            slice.copy_from_slice(&sv.amplitudes()[i * slice_len..(i + 1) * slice_len]);
        }
        Ok(dsv)
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.slices.len()
    }

    /// Mirror this state's communication and gate activity into `obs` (in
    /// addition to the per-state [`ClusterCounters`], which always run).
    pub fn observe(&mut self, obs: Arc<ClusterObs>) {
        self.obs = Some(obs);
    }

    /// Enable/disable exchange batching (deferred dswap undos). The final
    /// amplitudes and `Counts` are bit-identical either way — only the
    /// exchange schedule (and therefore the exchange counters) changes.
    ///
    /// # Panics
    ///
    /// Panics if swaps are currently deferred (call
    /// [`QuantumState::sync_layout`] first).
    pub fn set_exchange_batching(&mut self, on: bool) {
        assert!(
            self.layout.is_canonical(),
            "cannot toggle batching with deferred swaps active"
        );
        self.batching = on;
    }

    /// Whether exchange batching is enabled.
    pub fn exchange_batching(&self) -> bool {
        self.batching
    }

    /// Amplitudes held per node.
    pub fn slice_len(&self) -> usize {
        1usize << self.local_n
    }

    /// Total amplitude bytes across the node group (`2^n · 16`).
    pub fn bytes(&self) -> usize {
        self.slice_len() * self.n_nodes() * std::mem::size_of::<C64>()
    }

    /// Qubits that are node-local (the low `n − g`).
    pub fn local_qubits(&self) -> u16 {
        self.local_n
    }

    /// Gather the full state onto "one node" (for verification / sampling
    /// at small scale).
    pub fn gather(&self) -> StateVector {
        debug_assert!(self.layout.is_canonical(), "gather on deferred layout");
        let mut amps = Vec::with_capacity(1usize << self.n_qubits);
        for slice in &self.slices {
            amps.extend_from_slice(slice);
        }
        StateVector::from_amplitudes(amps)
    }

    /// Squared 2-norm across all nodes.
    pub fn norm_sqr(&self) -> f64 {
        self.slices
            .iter()
            .map(|s| s.iter().map(|a| a.norm_sqr()).sum::<f64>())
            .sum()
    }

    /// Reset to `|0…0⟩` (counted as one compute pass; counters otherwise
    /// retained).
    pub fn reset_zero(&mut self) {
        // The amplitudes are overwritten wholesale: deferred swaps are
        // forgotten, not undone.
        self.layout.reset();
        for slice in &mut self.slices {
            slice.fill(c64(0.0, 0.0));
        }
        self.slices[0][0] = c64(1.0, 0.0);
        self.charge_compute_pass();
    }

    /// Overwrite with `src`'s amplitudes (node-local memcpy on every node;
    /// this is TQSim's intermediate-state copy).
    ///
    /// # Panics
    ///
    /// Panics if layouts differ.
    pub fn copy_from(&mut self, src: &DistributedStateVector) {
        assert_eq!(self.n_qubits, src.n_qubits, "width mismatch");
        assert_eq!(self.n_nodes(), src.n_nodes(), "node-count mismatch");
        // Failpoint modelling a node failing mid-copy. No error channel
        // through the state API, so an injected error panics; the engine's
        // per-task `catch_unwind` contains it to the running job.
        if let Err(fault) = tqsim_faults::trigger("cluster.state_copy") {
            panic!("{fault}");
        }
        // Sources are always post-replay states in canonical layout; the
        // destination's own deferred swaps (if any) are overwritten.
        debug_assert!(src.layout.is_canonical(), "copy from non-canonical state");
        self.layout.reset();
        for (dst, s) in self.slices.iter_mut().zip(src.slices.iter()) {
            dst.copy_from_slice(s);
        }
        self.counters.state_copies += 1;
        if let Some(obs) = &self.obs {
            obs.state_copies.inc();
        }
        self.charge_compute_pass();
    }

    /// Sample one outcome given a uniform draw, walking the cumulative
    /// distribution amplitude by amplitude in global index order — the
    /// **same accumulation order** as [`StateVector::sample_with`] and both
    /// backends' `sample_many`, so a draw lands on the identical basis
    /// state on every backend (floating-point addition is non-associative;
    /// a per-node pre-summed walk would diverge on edge draws).
    pub fn sample_with(&self, u: f64) -> u64 {
        debug_assert!(self.layout.is_canonical(), "sampling on deferred layout");
        let mut acc = 0.0f64;
        for (node, slice) in self.slices.iter().enumerate() {
            for (i, a) in slice.iter().enumerate() {
                acc += a.norm_sqr();
                if u < acc {
                    return ((node as u64) << self.local_n) | i as u64;
                }
            }
        }
        // Over-range draw on a slightly sub-normalised state: last basis
        // state, exactly like the single-node walk.
        (1u64 << self.n_qubits) - 1
    }

    /// Sample one outcome with an RNG.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rand::RngExt::random(rng);
        self.sample_with(u)
    }

    /// Sample one outcome per uniform draw in `us`, walking the cumulative
    /// distribution **once** across all node slices (vs one expected
    /// half-walk per draw for repeated [`DistributedStateVector::sample_with`]).
    ///
    /// Mirrors [`StateVector::sample_many`] draw for draw — the draws are
    /// sorted internally, `out[i]` is the outcome for `us[i]` in original
    /// order, and the CDF is accumulated in global index order with the
    /// same addition sequence, so oversampled leaves stay bit-identical
    /// across backends.
    pub fn sample_many(&self, us: &[f64]) -> Vec<u64> {
        debug_assert!(self.layout.is_canonical(), "sampling on deferred layout");
        let mut order: Vec<usize> = (0..us.len()).collect();
        order.sort_by(|&i, &j| us[i].total_cmp(&us[j]));
        let mut out = vec![0u64; us.len()];
        if us.is_empty() {
            return out;
        }
        let local_mask = self.slice_len() - 1;
        let amp = |idx: usize| self.slices[idx >> self.local_n][idx & local_mask];
        let total = 1usize << self.n_qubits;
        let mut idx = 0usize;
        let mut acc = amp(0).norm_sqr();
        for &slot in &order {
            // Mirror `sample_with`: smallest index with u < cdf(index),
            // falling back to the last basis state for over-range draws.
            while us[slot] >= acc && idx + 1 < total {
                idx += 1;
                acc += amp(idx).norm_sqr();
            }
            out[slot] = idx as u64;
        }
        out
    }

    /// Count one communication-free gate (per-state and, when observed,
    /// the registry total).
    #[inline]
    fn note_local_gate(&mut self) {
        self.counters.local_gates += 1;
        if let Some(obs) = &self.obs {
            obs.local_gates.inc();
        }
    }

    /// Count one gate that needed a global→local remap.
    #[inline]
    fn note_remapped_gate(&mut self) {
        self.counters.global_gates += 1;
        if let Some(obs) = &self.obs {
            obs.remapped_gates.inc();
        }
    }

    fn charge_compute_pass(&mut self) {
        let slice_len = self.slice_len() as u64;
        self.counters.amp_ops += slice_len * self.n_nodes() as u64;
        self.counters.simulated_seconds += self.model.compute_time(slice_len);
    }

    /// Apply `op` to every node slice concurrently (one thread per node),
    /// handing the closure its node index. The single serial/threaded
    /// dispatch point for node-local sweeps.
    fn each_node_indexed<F>(&mut self, op: F)
    where
        F: Fn(usize, &mut [C64]) + Sync,
    {
        if self.slice_len() < THREAD_MIN_SLICE {
            for (node, slice) in self.slices.iter_mut().enumerate() {
                op(node, slice);
            }
        } else {
            std::thread::scope(|scope| {
                for (node, slice) in self.slices.iter_mut().enumerate() {
                    let op = &op;
                    scope.spawn(move || op(node, slice));
                }
            });
        }
        self.charge_compute_pass();
    }

    /// Apply `op` to every node slice concurrently (one thread per node).
    fn each_node<F>(&mut self, op: F)
    where
        F: Fn(&mut [C64]) + Sync,
    {
        self.each_node_indexed(|_, slice| op(slice));
    }

    /// Distributed swap of global bit `gb` (0-based within the top `g`)
    /// with local qubit `lq`: pairwise half-slice exchange.
    fn dswap(&mut self, gb: u16, lq: u16) {
        debug_assert!(gb < self.g && lq < self.local_n);
        // Failpoint modelling an interconnect fault (dropped exchange,
        // slow link via the delay action). Converted to a panic for the
        // same reason as `copy_from`.
        if let Err(fault) = tqsim_faults::trigger("cluster.exchange") {
            panic!("{fault}");
        }
        let start = Instant::now();
        let step = 1usize << gb;
        let sl = 1usize << lq;
        if self.slice_len() < THREAD_MIN_SLICE {
            for chunk in self.slices.chunks_mut(step * 2) {
                let (lo, hi) = chunk.split_at_mut(step);
                for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                    exchange_halves(a, b, sl);
                }
            }
        } else {
            std::thread::scope(|scope| {
                for chunk in self.slices.chunks_mut(step * 2) {
                    let (lo, hi) = chunk.split_at_mut(step);
                    for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                        scope.spawn(move || exchange_halves(a, b, sl));
                    }
                }
            });
        }
        let measured = start.elapsed().as_secs_f64();
        let half_bytes = (self.slice_len() / 2 * 16) as u64;
        let simulated = self.model.exchange_time(half_bytes);
        let total_bytes = half_bytes * self.n_nodes() as u64;
        self.counters.exchanges += 1;
        self.counters.bytes_exchanged += total_bytes;
        self.counters.simulated_seconds += simulated;
        self.counters.measured_exchange_seconds += measured;
        if let Some(obs) = &self.obs {
            obs.note_exchange(total_bytes, measured, simulated);
        }
    }

    /// Distributed-swap every global qubit in `qubits` down to a scratch
    /// local qubit. Returns the remapped (now all-local) qubit list and the
    /// swap plan to undo with [`DistributedStateVector::undo_remap`].
    fn remap_to_local(&mut self, qubits: &[u16]) -> (Vec<u16>, Vec<(u16, u16)>) {
        let local_n = self.local_n;
        let mut qubits = qubits.to_vec();
        // Scratch = highest local qubits not used by the operation itself.
        let mut scratch: Vec<u16> = (0..local_n)
            .rev()
            .filter(|q| !qubits.contains(q))
            .take(qubits.len())
            .collect();
        let mut swaps: Vec<(u16, u16)> = Vec::new();
        for q in qubits.iter_mut() {
            if *q >= local_n {
                let dst = scratch
                    .pop()
                    .expect("constructor guarantees >= 3 local qubits");
                let gb = *q - local_n;
                self.dswap(gb, dst);
                swaps.push((gb, dst));
                *q = dst;
            }
        }
        (qubits, swaps)
    }

    /// Undo a [`DistributedStateVector::remap_to_local`] swap plan.
    fn undo_remap(&mut self, swaps: &[(u16, u16)]) {
        for &(gb, dst) in swaps.iter().rev() {
            self.dswap(gb, dst);
        }
    }

    /// Remap any global qubits of `gate` onto scratch local qubits, apply
    /// locally, and restore. Returns the swap plan applied (for testing).
    fn apply_gate_remapped(&mut self, gate: &Gate) -> usize {
        let (qubits, swaps) = self.remap_to_local(gate.qubits());
        let remapped = Gate::new(*gate.kind(), &qubits);
        self.each_node(|slice| kernels::apply_gate_amps(slice, &remapped));
        self.undo_remap(&swaps);
        swaps.len()
    }

    /// Batched-mode dense dispatch: consult the [`LayoutTracker`], execute
    /// whatever dswaps it mandates, and apply `f` at the physical operand
    /// positions it returns. The kernels' per-amplitude arithmetic is
    /// position-independent, so the result is bit-identical to the eager
    /// remap path — only the exchange schedule differs.
    fn apply_batched<F>(&mut self, qs: &[u16], f: F)
    where
        F: Fn(&mut [C64], &[u16]) + Sync,
    {
        let logically_local = qs.iter().all(|&q| q < self.local_n);
        let phys = match self.layout.decide_dense(qs) {
            DensePlan::InPlace { phys } => phys,
            DensePlan::FlushThenLocal { undo } => {
                for &(gb, dst) in &undo {
                    self.dswap(gb, dst);
                }
                qs.to_vec()
            }
            DensePlan::FlushThenRemap { undo, swaps, phys } => {
                for &(gb, dst) in undo.iter().chain(swaps.iter()) {
                    self.dswap(gb, dst);
                }
                phys
            }
        };
        self.each_node(|slice| f(slice, &phys));
        if logically_local {
            self.note_local_gate();
        } else {
            self.note_remapped_gate();
        }
    }

    /// Undo deferred swaps so the amplitude layout is canonical again.
    fn flush_layout(&mut self) {
        if !self.layout.is_canonical() {
            for (gb, dst) in self.layout.decide_sync() {
                self.dswap(gb, dst);
            }
        }
    }
}

/// The single source of truth for the slicing invariant: `n_nodes` must
/// be a power of two ≥ 1 and at least 3 qubits must stay node-local.
/// [`DistributedStateVector::zero`], [`ClusterBackend::validate`], the
/// runner's pre-checks and the `tqsim-shard` coordinator all delegate
/// here, so the rule cannot drift.
pub fn check_layout(n_qubits: u16, n_nodes: usize) -> Result<(), ClusterError> {
    if n_nodes == 0 || !n_nodes.is_power_of_two() {
        return Err(ClusterError::BadNodeCount(n_nodes));
    }
    if n_qubits < n_nodes.trailing_zeros() as u16 + 3 {
        return Err(ClusterError::TooFewLocalQubits { n_qubits, n_nodes });
    }
    Ok(())
}

/// The distributed execution backend: a node-group descriptor (node count
/// and interconnect model) implementing [`PooledBackend`] with
/// [`DistributedStateVector`] states, so `tqsim_statevec::StatePool`, the
/// `tqsim-engine` pooled tree executor and `tqsim`'s serial tree walk all
/// run on the cluster unchanged. Parent→child state copies stay node-local
/// slice memcpys ([`DistributedStateVector::copy_from`]) — intermediate
/// states never round-trip through a dense global vector.
///
/// Construction does not validate a register width (the backend is
/// width-agnostic until a state is allocated); call
/// [`ClusterBackend::validate`] — or check [`ClusterBackend::supports`] —
/// before pooling states of a given width.
#[derive(Clone, Debug)]
pub struct ClusterBackend {
    n_nodes: usize,
    model: InterconnectModel,
    obs: Option<Arc<ClusterObs>>,
    batching: bool,
}

/// Backends compare by topology (node count, interconnect model, batching
/// mode); whether one is observed does not change what it computes.
impl PartialEq for ClusterBackend {
    fn eq(&self, other: &Self) -> bool {
        self.n_nodes == other.n_nodes
            && self.model == other.model
            && self.batching == other.batching
    }
}

impl ClusterBackend {
    /// A backend slicing every state across `n_nodes` simulated nodes,
    /// pricing communication with `model`.
    ///
    /// # Panics
    ///
    /// Panics unless `n_nodes` is a power of two ≥ 1 (width-dependent
    /// validation is deferred to [`ClusterBackend::validate`]).
    pub fn new(n_nodes: usize, model: InterconnectModel) -> Self {
        assert!(
            n_nodes >= 1 && n_nodes.is_power_of_two(),
            "node count {n_nodes} is not a power of two >= 1"
        );
        ClusterBackend {
            n_nodes,
            model,
            obs: None,
            batching: false,
        }
    }

    /// Mirror every allocated state's communication and gate activity into
    /// `obs` (see [`ClusterObs::register`]).
    #[must_use]
    pub fn observed(mut self, obs: Arc<ClusterObs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Enable exchange batching (deferred dswap undos, see
    /// [`DistributedStateVector::set_exchange_batching`]) on every state
    /// this backend allocates.
    #[must_use]
    pub fn exchange_batching(mut self, on: bool) -> Self {
        self.batching = on;
        self
    }

    /// Number of nodes states are sliced across.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The interconnect model communication is priced with.
    pub fn model(&self) -> InterconnectModel {
        self.model
    }

    /// Check that `n_qubits`-wide states can be sliced across this node
    /// group (≥ 3 qubits must stay node-local).
    ///
    /// # Errors
    ///
    /// The same conditions as [`DistributedStateVector::zero`].
    pub fn validate(&self, n_qubits: u16) -> Result<(), ClusterError> {
        check_layout(n_qubits, self.n_nodes)
    }

    /// Whether `n_qubits`-wide states fit this node group (the infallible
    /// form of [`ClusterBackend::validate`], for placement policies).
    pub fn supports(&self, n_qubits: u16) -> bool {
        self.validate(n_qubits).is_ok()
    }
}

impl PooledBackend for ClusterBackend {
    type State = DistributedStateVector;

    fn supports(&self, n_qubits: u16) -> bool {
        ClusterBackend::supports(self, n_qubits)
    }

    fn allocate(&self, n_qubits: u16) -> DistributedStateVector {
        let mut state = DistributedStateVector::zero(n_qubits, self.n_nodes, self.model)
            .unwrap_or_else(|err| {
                panic!("executors must gate on PooledBackend::supports before allocating: {err}")
            });
        if let Some(obs) = &self.obs {
            state.observe(Arc::clone(obs));
        }
        state.set_exchange_batching(self.batching);
        state
    }

    fn reset_zero(&self, state: &mut DistributedStateVector) {
        state.reset_zero();
    }

    fn copy_into(&self, dst: &mut DistributedStateVector, src: &DistributedStateVector) {
        dst.copy_from(src);
    }

    fn state_bytes(&self, state: &DistributedStateVector) -> usize {
        state.bytes()
    }
}

/// Exchange the `lq`-bit=1 half of `a` with the `lq`-bit=0 half of `b`
/// (the distributed-swap wire protocol; `sl = 1 << lq`).
fn exchange_halves(a: &mut [C64], b: &mut [C64], sl: usize) {
    let len = a.len();
    let mut base = 0;
    while base < len {
        for off in 0..sl {
            let i = base + sl + off; // bit set in a
            let j = base + off; //      bit clear in b
            std::mem::swap(&mut a[i], &mut b[j]);
        }
        base += sl * 2;
    }
}

impl QuantumState for DistributedStateVector {
    fn n_qubits(&self) -> u16 {
        self.n_qubits
    }

    fn apply_gate(&mut self, gate: &Gate) {
        for &q in gate.qubits() {
            assert!(q < self.n_qubits, "gate {gate} out of range");
        }
        if self.batching {
            let kind = *gate.kind();
            self.apply_batched(gate.qubits(), move |slice, ps| {
                kernels::apply_gate_amps(slice, &Gate::new(kind, ps));
            });
            return;
        }
        let local_n = self.local_n;
        if gate.qubits().iter().all(|&q| q < local_n) {
            self.each_node(|slice| kernels::apply_gate_amps(slice, gate));
            self.note_local_gate();
        } else {
            self.apply_gate_remapped(gate);
            self.note_remapped_gate();
        }
    }

    fn apply_mat2(&mut self, q: u16, m: &Mat2) {
        assert!(q < self.n_qubits, "qubit out of range");
        if self.batching {
            let m = *m;
            self.apply_batched(&[q], move |slice, ps| {
                kernels::apply_mat2(slice, ps[0] as usize, &m);
            });
            return;
        }
        if q < self.local_n {
            // Fused kernel runs node-local, one thread per node.
            let ql = q as usize;
            let m = *m;
            self.each_node(move |slice| kernels::apply_mat2(slice, ql, &m));
            self.note_local_gate();
        } else {
            let (qs, swaps) = self.remap_to_local(&[q]);
            let ql = qs[0] as usize;
            let m = *m;
            self.each_node(move |slice| kernels::apply_mat2(slice, ql, &m));
            self.undo_remap(&swaps);
            self.note_remapped_gate();
        }
    }

    fn apply_mat4(&mut self, q_hi: u16, q_lo: u16, m: &Mat4) {
        assert!(
            q_hi < self.n_qubits && q_lo < self.n_qubits,
            "qubit out of range"
        );
        if self.batching {
            let m = *m;
            self.apply_batched(&[q_hi, q_lo], move |slice, ps| {
                kernels::apply_mat4(slice, ps[0] as usize, ps[1] as usize, &m);
            });
            return;
        }
        if q_hi < self.local_n && q_lo < self.local_n {
            // Both qubits node-local: the fused quad sweep never leaves the
            // node, exactly like the single-node kernel.
            let (hi, lo) = (q_hi as usize, q_lo as usize);
            let m = *m;
            self.each_node(move |slice| kernels::apply_mat4(slice, hi, lo, &m));
            self.note_local_gate();
        } else {
            // Fall back to the distributed-swap remap path.
            let (qs, swaps) = self.remap_to_local(&[q_hi, q_lo]);
            let (hi, lo) = (qs[0] as usize, qs[1] as usize);
            let m = *m;
            self.each_node(move |slice| kernels::apply_mat4(slice, hi, lo, &m));
            self.undo_remap(&swaps);
            self.note_remapped_gate();
        }
    }

    fn apply_mat8(&mut self, q2: u16, q1: u16, q0: u16, m: &Mat8) {
        assert!(
            q2 < self.n_qubits && q1 < self.n_qubits && q0 < self.n_qubits,
            "qubit out of range"
        );
        if self.batching {
            let m = *m;
            self.apply_batched(&[q2, q1, q0], move |slice, ps| {
                kernels::apply_mat8(slice, ps[0] as usize, ps[1] as usize, ps[2] as usize, &m);
            });
            return;
        }
        if q2 < self.local_n && q1 < self.local_n && q0 < self.local_n {
            // All three qubits node-local: the fused octet sweep never
            // leaves the node, exactly like the single-node kernel.
            let (b2, b1, b0) = (q2 as usize, q1 as usize, q0 as usize);
            let m = *m;
            self.each_node(move |slice| kernels::apply_mat8(slice, b2, b1, b0, &m));
            self.note_local_gate();
        } else {
            // Fall back to the distributed-swap remap path.
            let (qs, swaps) = self.remap_to_local(&[q2, q1, q0]);
            let (b2, b1, b0) = (qs[0] as usize, qs[1] as usize, qs[2] as usize);
            let m = *m;
            self.each_node(move |slice| kernels::apply_mat8(slice, b2, b1, b0, &m));
            self.undo_remap(&swaps);
            self.note_remapped_gate();
        }
    }

    fn apply_mat16(&mut self, qs: [u16; 4], m: &Mat16) {
        assert!(qs.iter().all(|&q| q < self.n_qubits), "qubit out of range");
        assert!(
            self.local_n >= 4,
            "4-qubit fusion clusters need >= 4 node-local qubits \
             (n_qubits >= log2(nodes) + 4); lower max_fuse_qubits"
        );
        if self.batching {
            self.apply_batched(&qs, move |slice, ps| {
                kernels::apply_mat16(slice, [ps[0], ps[1], ps[2], ps[3]].map(usize::from), m);
            });
            return;
        }
        if qs.iter().all(|&q| q < self.local_n) {
            // All four qubits node-local: the fused 16-amp sweep never
            // leaves the node, exactly like the single-node kernel.
            let bs = qs.map(usize::from);
            self.each_node(move |slice| kernels::apply_mat16(slice, bs, m));
            self.note_local_gate();
        } else {
            // Fall back to the distributed-swap remap path.
            let (remapped, swaps) = self.remap_to_local(&qs);
            let bs = [remapped[0], remapped[1], remapped[2], remapped[3]].map(usize::from);
            self.each_node(move |slice| kernels::apply_mat16(slice, bs, m));
            self.undo_remap(&swaps);
            self.note_remapped_gate();
        }
    }

    fn apply_mat32(&mut self, qs: [u16; 5], m: &Mat32) {
        assert!(qs.iter().all(|&q| q < self.n_qubits), "qubit out of range");
        assert!(
            self.local_n >= 5,
            "5-qubit fusion clusters need >= 5 node-local qubits \
             (n_qubits >= log2(nodes) + 5); lower max_fuse_qubits"
        );
        if self.batching {
            self.apply_batched(&qs, move |slice, ps| {
                kernels::apply_mat32(
                    slice,
                    [ps[0], ps[1], ps[2], ps[3], ps[4]].map(usize::from),
                    m,
                );
            });
            return;
        }
        if qs.iter().all(|&q| q < self.local_n) {
            let bs = qs.map(usize::from);
            self.each_node(move |slice| kernels::apply_mat32(slice, bs, m));
            self.note_local_gate();
        } else {
            let (remapped, swaps) = self.remap_to_local(&qs);
            let bs = [
                remapped[0],
                remapped[1],
                remapped[2],
                remapped[3],
                remapped[4],
            ]
            .map(usize::from);
            self.each_node(move |slice| kernels::apply_mat32(slice, bs, m));
            self.undo_remap(&swaps);
            self.note_remapped_gate();
        }
    }

    fn apply_diag_run(&mut self, run: &DiagRun) {
        // Diagonals never move amplitudes: each node sweeps its slice with
        // the slice's global base index — no communication even when the
        // run touches node-selecting (global) qubits. Under batching the
        // sweep reads qubit positions against the *canonical* index, so a
        // run touching any displaced qubit must flush first; runs on
        // undisturbed qubits apply through deferred swaps for free.
        if self.batching
            && !(self
                .layout
                .is_identity_on(run.terms1().iter().map(|(q, _)| q))
                && self
                    .layout
                    .is_identity_on(run.terms2().iter().flat_map(|(a, b, _)| [a, b])))
        {
            self.flush_layout();
        }
        let local_n = self.local_n;
        self.each_node_indexed(|node, slice| run.apply_offset(slice, node << local_n));
        self.note_local_gate();
    }

    fn marginal_one(&self, q: u16) -> f64 {
        assert!(q < self.n_qubits, "qubit out of range");
        debug_assert!(self.layout.is_canonical(), "marginal on deferred layout");
        if q >= self.local_n {
            let mask = 1usize << (q - self.local_n);
            self.slices
                .iter()
                .enumerate()
                .filter(|(node, _)| node & mask != 0)
                .map(|(_, s)| s.iter().map(|a| a.norm_sqr()).sum::<f64>())
                .sum()
        } else {
            let mask = 1usize << q;
            self.slices
                .iter()
                .flat_map(|s| s.iter().enumerate())
                .filter(|(i, _)| i & mask != 0)
                .map(|(_, a)| a.norm_sqr())
                .sum()
        }
    }

    fn apply_diag1(&mut self, q: u16, d0: C64, d1: C64) {
        assert!(q < self.n_qubits, "qubit out of range");
        self.flush_layout();
        if q >= self.local_n {
            // Node-selecting bit: scale whole slices, no communication.
            let mask = 1usize << (q - self.local_n);
            self.each_node_indexed(|node, slice| {
                let d = if node & mask != 0 { d1 } else { d0 };
                for a in slice.iter_mut() {
                    *a *= d;
                }
            });
        } else {
            let q = q as usize;
            self.each_node(|slice| kernels::apply_diag1(slice, q, d0, d1));
        }
    }

    fn apply_antidiag1(&mut self, q: u16, a01: C64, a10: C64) {
        assert!(q < self.n_qubits, "qubit out of range");
        self.flush_layout();
        if q >= self.local_n {
            // Same interconnect failpoint as `dswap`: the cross-node
            // combine is an exchange round too.
            if let Err(fault) = tqsim_faults::trigger("cluster.exchange") {
                panic!("{fault}");
            }
            let start = Instant::now();
            // Pairwise cross-node combine: a' = a01·b, b' = a10·a.
            let step = 1usize << (q - self.local_n);
            let combine = |a: &mut Vec<C64>, b: &mut Vec<C64>| {
                for (x, y) in a.iter_mut().zip(b.iter_mut()) {
                    let (vx, vy) = (*x, *y);
                    *x = a01 * vy;
                    *y = a10 * vx;
                }
            };
            if self.slice_len() < THREAD_MIN_SLICE {
                for chunk in self.slices.chunks_mut(step * 2) {
                    let (lo, hi) = chunk.split_at_mut(step);
                    for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                        combine(a, b);
                    }
                }
            } else {
                std::thread::scope(|scope| {
                    for chunk in self.slices.chunks_mut(step * 2) {
                        let (lo, hi) = chunk.split_at_mut(step);
                        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                            let combine = &combine;
                            scope.spawn(move || combine(a, b));
                        }
                    }
                });
            }
            let measured = start.elapsed().as_secs_f64();
            let bytes = (self.slice_len() * 16) as u64;
            let simulated = self.model.exchange_time(bytes);
            let total_bytes = bytes * self.n_nodes() as u64;
            self.counters.exchanges += 1;
            self.counters.bytes_exchanged += total_bytes;
            self.counters.simulated_seconds += simulated;
            self.counters.measured_exchange_seconds += measured;
            if let Some(obs) = &self.obs {
                obs.note_exchange(total_bytes, measured, simulated);
            }
        } else {
            let q = q as usize;
            self.each_node(|slice| kernels::apply_antidiag1(slice, q, a01, a10));
        }
    }

    fn renormalize(&mut self) {
        self.flush_layout();
        let n = self.norm_sqr();
        assert!(n > 1e-300, "cannot normalise a zero state");
        let s = 1.0 / n.sqrt();
        self.each_node(|slice| {
            for a in slice.iter_mut() {
                *a *= s;
            }
        });
        self.counters.simulated_seconds += self.model.allreduce_time(self.n_nodes());
    }

    fn norm_sqr(&self) -> f64 {
        DistributedStateVector::norm_sqr(self)
    }

    fn sample_with(&self, u: f64) -> u64 {
        DistributedStateVector::sample_with(self, u)
    }

    fn sample_many(&self, us: &[f64]) -> Vec<u64> {
        DistributedStateVector::sample_many(self, us)
    }

    fn sync_layout(&mut self) {
        self.flush_layout();
    }
}

impl fmt::Debug for DistributedStateVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DistributedStateVector[{} qubits over {} nodes; |ψ|²={:.6}]",
            self.n_qubits,
            self.n_nodes(),
            self.norm_sqr()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqsim_circuit::generators;
    use tqsim_circuit::{Circuit, GateKind};

    fn assert_states_match(dsv: &DistributedStateVector, sv: &StateVector) {
        let gathered = dsv.gather();
        for (i, (a, b)) in gathered
            .amplitudes()
            .iter()
            .zip(sv.amplitudes())
            .enumerate()
        {
            assert!((a - b).norm() < 1e-10, "amplitude {i}: {a} vs {b}");
        }
    }

    #[test]
    fn construction_validation() {
        let m = InterconnectModel::commodity_cluster();
        assert!(DistributedStateVector::zero(8, 3, m).is_err());
        assert!(
            DistributedStateVector::zero(4, 4, m).is_err(),
            "only 2 local qubits"
        );
        assert!(DistributedStateVector::zero(8, 4, m).is_ok());
    }

    #[test]
    fn local_gates_match_single_node() {
        let m = InterconnectModel::commodity_cluster();
        let mut c = Circuit::new(8);
        c.h(0).cx(0, 1).t(2).cx(1, 2).ry(0.7, 3).ccx(0, 1, 2);
        let mut sv = StateVector::zero(8);
        sv.apply_circuit(&c);
        let mut dsv = DistributedStateVector::zero(8, 4, m).unwrap();
        for g in &c {
            dsv.apply_gate(g);
        }
        assert_states_match(&dsv, &sv);
        assert_eq!(dsv.counters.global_gates, 0);
        assert_eq!(
            dsv.counters.exchanges, 0,
            "all-local circuit must not communicate"
        );
    }

    #[test]
    fn global_gates_match_single_node() {
        let m = InterconnectModel::commodity_cluster();
        // Gates deliberately touching the top (global) qubits.
        let mut c = Circuit::new(8);
        c.h(7)
            .cx(7, 0)
            .h(6)
            .cx(6, 7)
            .ccx(7, 6, 5)
            .swap(5, 7)
            .rz(0.3, 6);
        let mut sv = StateVector::zero(8);
        sv.apply_circuit(&c);
        let mut dsv = DistributedStateVector::zero(8, 8, m).unwrap();
        for g in &c {
            dsv.apply_gate(g);
        }
        assert_states_match(&dsv, &sv);
        assert!(dsv.counters.global_gates > 0);
        assert!(dsv.counters.exchanges > 0);
        assert!(dsv.counters.bytes_exchanged > 0);
    }

    /// An observed backend mirrors every per-state counter movement into
    /// the shared registry totals, and observation never changes the math.
    #[test]
    fn observed_backend_mirrors_state_counters() {
        let m = InterconnectModel::commodity_cluster();
        let registry = Registry::new();
        let obs = ClusterObs::register(&registry);
        let backend = ClusterBackend::new(4, m).observed(Arc::clone(&obs));
        let circuit = generators::qft(8);

        let mut observed = backend.allocate(8);
        let mut plain = DistributedStateVector::zero(8, 4, m).unwrap();
        for g in &circuit {
            observed.apply_gate(g);
            plain.apply_gate(g);
        }
        let mut scratch = backend.allocate(8);
        scratch.copy_from(&observed);
        assert_states_match(&scratch, &plain.gather());

        assert_eq!(obs.local_gates.get(), observed.counters.local_gates);
        assert_eq!(obs.remapped_gates.get(), observed.counters.global_gates);
        assert_eq!(obs.exchanges.get(), observed.counters.exchanges);
        assert_eq!(obs.bytes_exchanged.get(), observed.counters.bytes_exchanged);
        assert_eq!(obs.state_copies.get(), 1, "one copy_from above");
        assert!(obs.exchanges.get() > 0, "QFT(8) on 4 nodes communicates");
        // Observation is a mirror, not a behaviour change.
        assert_eq!(observed.counters, plain.counters);
    }

    #[test]
    fn full_benchmarks_match_single_node() {
        let m = InterconnectModel::commodity_cluster();
        for circuit in [
            generators::qft(7),
            generators::bv(7),
            generators::qsc(7, 40, 3),
        ] {
            let mut sv = StateVector::zero(7);
            sv.apply_circuit(&circuit);
            for nodes in [1usize, 2, 4, 8] {
                if let Ok(mut dsv) = DistributedStateVector::zero(7, nodes, m) {
                    for g in &circuit {
                        dsv.apply_gate(g);
                    }
                    assert_states_match(&dsv, &sv);
                }
            }
        }
    }

    #[test]
    fn marginal_and_diag_on_global_qubit() {
        let m = InterconnectModel::commodity_cluster();
        let mut dsv = DistributedStateVector::zero(6, 4, m).unwrap();
        // Put qubit 5 (global) into |+>.
        dsv.apply_gate(&Gate::new(GateKind::H, &[5]));
        assert!((QuantumState::marginal_one(&dsv, 5) - 0.5).abs() < 1e-12);
        // Project onto |1> via anti/diag Kraus mechanics.
        dsv.apply_diag1(5, c64(0.0, 0.0), c64(1.0, 0.0));
        dsv.renormalize();
        assert!((QuantumState::marginal_one(&dsv, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn antidiag_on_global_qubit_matches_single_node() {
        let m = InterconnectModel::commodity_cluster();
        let mut c = Circuit::new(6);
        c.h(5).ry(0.9, 4).cx(5, 0);
        let mut sv = StateVector::zero(6);
        sv.apply_circuit(&c);
        let mut dsv = DistributedStateVector::zero(6, 8, m).unwrap();
        for g in &c {
            dsv.apply_gate(g);
        }
        sv.apply_antidiag1(5, c64(0.5, 0.0), c64(0.25, 0.0));
        dsv.apply_antidiag1(5, c64(0.5, 0.0), c64(0.25, 0.0));
        assert_states_match(&dsv, &sv);
    }

    #[test]
    fn sampling_matches_gathered_state() {
        let m = InterconnectModel::commodity_cluster();
        let c = generators::qft(6);
        let mut dsv = DistributedStateVector::zero(6, 4, m).unwrap();
        for g in &c {
            dsv.apply_gate(g);
        }
        let gathered = dsv.gather();
        for u in [0.01, 0.25, 0.5, 0.75, 0.99] {
            assert_eq!(dsv.sample_with(u), gathered.sample_with(u), "u={u}");
        }
    }

    #[test]
    fn sample_many_matches_sample_with_and_single_node() {
        let m = InterconnectModel::commodity_cluster();
        let c = generators::qft(6);
        let mut dsv = DistributedStateVector::zero(6, 4, m).unwrap();
        for g in &c {
            dsv.apply_gate(g);
        }
        let us = [0.93, 0.02, 0.5, 0.500001, 0.02, 0.999_999_9, 0.0];
        let batch = dsv.sample_many(&us);
        for (u, got) in us.iter().zip(&batch) {
            assert_eq!(*got, dsv.sample_with(*u), "u={u}");
        }
        // Draw-for-draw identical to the single-node batched walk.
        assert_eq!(batch, dsv.gather().sample_many(&us));
        assert!(dsv.sample_many(&[]).is_empty());
    }

    #[test]
    fn fused_ops_match_remapped_gate_dispatch() {
        use tqsim_circuit::math::Mat2;
        let m = InterconnectModel::commodity_cluster();
        let mut prep = Circuit::new(6);
        prep.h(0).cx(0, 3).ry(0.7, 5).cz(1, 4);
        let mat2 = GateKind::H.matrix1().unwrap();
        let mat4 = GateKind::Cx.matrix2().unwrap();
        let folded2 = mat2.mul(&Mat2::identity());
        let mut sv = StateVector::zero(6);
        sv.apply_circuit(&prep);
        let mut dsv = DistributedStateVector::zero(6, 4, m).unwrap();
        for g in &prep {
            dsv.apply_gate(g);
        }
        // Local and global Mat2 / Mat4, including a cross-boundary pair.
        for q in [1u16, 5] {
            QuantumState::apply_mat2(&mut sv, q, &folded2);
            QuantumState::apply_mat2(&mut dsv, q, &folded2);
        }
        for (hi, lo) in [(0u16, 1u16), (4, 0), (5, 4)] {
            QuantumState::apply_mat4(&mut sv, hi, lo, &mat4);
            QuantumState::apply_mat4(&mut dsv, hi, lo, &mat4);
        }
        assert_states_match(&dsv, &sv);
        assert!(dsv.counters.exchanges > 0, "global mat ops must remap");
    }

    #[test]
    fn diag_runs_never_communicate() {
        let m = InterconnectModel::commodity_cluster();
        let mut prep = Circuit::new(6);
        prep.h(0).h(5).cx(0, 4);
        let mut sv = StateVector::zero(6);
        sv.apply_circuit(&prep);
        let mut dsv = DistributedStateVector::zero(6, 4, m).unwrap();
        for g in &prep {
            dsv.apply_gate(g);
        }
        let before = dsv.counters.exchanges;
        // A run over local and global qubits, incl. a cross-boundary pair.
        let mut run = tqsim_statevec::DiagRun::new();
        run.push1(1, GateKind::T.diag1().unwrap());
        run.push1(5, GateKind::S.diag1().unwrap());
        run.push2(4, 0, GateKind::Cz.diag2().unwrap());
        QuantumState::apply_diag_run(&mut sv, &run);
        QuantumState::apply_diag_run(&mut dsv, &run);
        assert_states_match(&dsv, &sv);
        assert_eq!(
            dsv.counters.exchanges, before,
            "diagonal sweeps must stay node-local"
        );
    }

    #[test]
    fn copy_from_counts_copies() {
        let m = InterconnectModel::commodity_cluster();
        let mut a = DistributedStateVector::zero(6, 2, m).unwrap();
        a.apply_gate(&Gate::new(GateKind::H, &[0]));
        let mut b = DistributedStateVector::zero(6, 2, m).unwrap();
        b.copy_from(&a);
        assert_eq!(b.counters.state_copies, 1);
        assert_states_match(&b, &a.gather());
    }

    /// Exchange batching elides swap-back/swap-down pairs but performs the
    /// same per-gate arithmetic at the same physical positions, so the
    /// final amplitudes are **bit**-identical to the eager run — and the
    /// boundary-straddling ladder pays far fewer exchanges.
    #[test]
    fn batched_execution_is_bit_identical_with_fewer_exchanges() {
        let m = InterconnectModel::commodity_cluster();
        let mut c = Circuit::new(8);
        // Three rounds of a ladder sharing global qubit 7, each round ended
        // by a conflicting access to the scratch position (local qubit 5).
        for _ in 0..3 {
            for lq in 0..4u16 {
                c.cx(7, lq);
            }
            c.h(5);
        }
        let mut eager = DistributedStateVector::zero(8, 4, m).unwrap();
        let mut batched = DistributedStateVector::zero(8, 4, m).unwrap();
        batched.set_exchange_batching(true);
        for g in &c {
            eager.apply_gate(g);
            batched.apply_gate(g);
        }
        QuantumState::sync_layout(&mut batched);
        let (a, b) = (eager.gather(), batched.gather());
        assert_eq!(a.amplitudes(), b.amplitudes(), "batching changed the math");
        assert!(
            batched.counters.exchanges * 2 <= eager.counters.exchanges,
            "batching saved too little: {} vs {} exchanges",
            batched.counters.exchanges,
            eager.counters.exchanges
        );
        // Layout is canonical again, so per-gate totals agree.
        assert_eq!(
            eager.counters.local_gates + eager.counters.global_gates,
            batched.counters.local_gates + batched.counters.global_gates
        );
    }

    /// Diagonal sweeps on qubits untouched by the deferred permutation
    /// apply in place; a sweep on a displaced qubit forces the flush.
    #[test]
    fn batched_diag_runs_flush_only_on_conflict() {
        let m = InterconnectModel::commodity_cluster();
        let mut dsv = DistributedStateVector::zero(8, 4, m).unwrap();
        dsv.set_exchange_batching(true);
        dsv.apply_gate(&Gate::new(GateKind::H, &[7]));
        dsv.apply_gate(&Gate::new(GateKind::Cx, &[7, 0])); // defers q7 ↔ 5
        let after_remap = dsv.counters.exchanges;
        let mut run = tqsim_statevec::DiagRun::new();
        run.push1(1, GateKind::T.diag1().unwrap());
        QuantumState::apply_diag_run(&mut dsv, &run);
        assert_eq!(dsv.counters.exchanges, after_remap, "q1 is undisplaced");
        let mut conflict = tqsim_statevec::DiagRun::new();
        conflict.push1(7, GateKind::S.diag1().unwrap());
        QuantumState::apply_diag_run(&mut dsv, &conflict);
        assert!(dsv.counters.exchanges > after_remap, "q7 is displaced");
        // The flush restored canonical layout: queries are now safe.
        assert!((dsv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    /// The replay path (`CompiledCircuit` + noise) syncs the layout at every
    /// flush point, so batched and eager replays agree bit for bit even
    /// with state-dependent noise sampling in between.
    #[test]
    fn batched_backend_matches_eager_under_compiled_replay() {
        use rand::SeedableRng;
        use tqsim_statevec::OpCounts;
        let m = InterconnectModel::commodity_cluster();
        let circuit = generators::qsc(8, 30, 7);
        let noise = tqsim_noise::fig16_models().pop().unwrap();
        let compiled = noise.compile(&circuit);
        let eager_backend = ClusterBackend::new(4, m);
        let batched_backend = ClusterBackend::new(4, m).exchange_batching(true);
        let mut eager = eager_backend.allocate(8);
        let mut batched = batched_backend.allocate(8);
        assert!(batched.exchange_batching() && !eager.exchange_batching());
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(11);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(11);
        let mut ops_a = OpCounts::new();
        let mut ops_b = OpCounts::new();
        compiled.replay(&mut eager, &mut ops_a, |gate, ctx| {
            noise.apply_after_gate_deferred(gate, ctx, &mut rng_a)
        });
        compiled.replay(&mut batched, &mut ops_b, |gate, ctx| {
            noise.apply_after_gate_deferred(gate, ctx, &mut rng_b)
        });
        assert_eq!(ops_a.noise_ops, ops_b.noise_ops);
        let (a, b) = (eager.gather(), batched.gather());
        assert_eq!(a.amplitudes(), b.amplitudes());
        assert!(batched.counters.exchanges <= eager.counters.exchanges);
    }

    #[test]
    fn noise_channels_work_on_distributed_state() {
        use rand::SeedableRng;
        let m = InterconnectModel::commodity_cluster();
        let noise = tqsim_noise::fig16_models().pop().unwrap(); // ALL
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut dsv = DistributedStateVector::zero(6, 4, m).unwrap();
        let c = generators::qft(6);
        for g in &c {
            dsv.apply_gate(g);
            noise.apply_after_gate(&mut dsv, g, &mut rng);
        }
        assert!((dsv.norm_sqr() - 1.0).abs() < 1e-9);
    }
}
