//! Distributed execution of baseline and TQSim tree simulations, plus the
//! analytic scaling estimator behind Fig. 13.

use crate::dsv::{ClusterBackend, ClusterError, DistributedStateVector};
use crate::model::{ClusterCounters, InterconnectModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tqsim::{Counts, ExecOptions, Partition};
use tqsim_circuit::{Circuit, Gate};
use tqsim_noise::NoiseModel;
use tqsim_statevec::{CompiledCircuit, OpCounts, PooledBackend};

/// Result of a distributed run.
#[derive(Clone, Debug)]
pub struct DistRunResult {
    /// Measurement histogram.
    pub counts: Counts,
    /// Merged cluster counters (including modeled cluster seconds).
    pub counters: ClusterCounters,
    /// Backend-agnostic operation tallies from the shared replay driver —
    /// `amp_passes` quantifies the distributed fusion win exactly as on the
    /// single-node backend (the dynamic fuser emits the same sweeps).
    pub ops: OpCounts,
}

/// Execute a TQSim partition on the distributed engine with default
/// [`ExecOptions`] (fused replay, one sample per leaf). See
/// [`run_distributed_with_options`].
///
/// # Errors
///
/// Returns [`ClusterError`] for invalid node configurations.
///
/// # Panics
///
/// Panics if the partition does not cover the circuit.
pub fn run_distributed(
    circuit: &Circuit,
    noise: &NoiseModel,
    partition: &Partition,
    n_nodes: usize,
    model: InterconnectModel,
    seed: u64,
) -> Result<DistRunResult, ClusterError> {
    run_distributed_with_options(
        circuit,
        noise,
        partition,
        n_nodes,
        model,
        seed,
        ExecOptions::default(),
    )
}

/// Execute a TQSim partition on the distributed engine (the baseline is the
/// degenerate partition `(N)`). A thin wrapper over the backend-generic
/// serial tree walk ([`tqsim::run_tree_nodes`] on a [`ClusterBackend`]) —
/// the same walk the single-node [`tqsim::TreeExecutor`] drives — so each
/// subcircuit is compiled **once**, its fused plan replayed per tree node
/// through the shared generic driver ([`tqsim::run_subcircuit`]), and the
/// RNG stream consumed identically: for the same seed the `Counts` are
/// **bit-identical** to the serial executor's (property-tested in
/// `tests/prop_backend.rs`).
///
/// # Errors
///
/// Returns [`ClusterError`] for invalid node configurations.
///
/// # Panics
///
/// Panics if the partition does not cover the circuit or
/// `options.leaf_samples == 0`.
pub fn run_distributed_with_options(
    circuit: &Circuit,
    noise: &NoiseModel,
    partition: &Partition,
    n_nodes: usize,
    model: InterconnectModel,
    seed: u64,
    options: ExecOptions,
) -> Result<DistRunResult, ClusterError> {
    assert!(
        options.leaf_samples >= 1,
        "need at least one sample per leaf"
    );
    let subcircuits = partition.subcircuits(circuit);
    // Compile once per subcircuit; every node of the tree replays the plan.
    let compiled: Vec<CompiledCircuit> = subcircuits.iter().map(|sc| noise.compile(sc)).collect();
    let k = subcircuits.len();
    let n = circuit.n_qubits();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = Counts::new(n);
    let mut ops = OpCounts::new();

    crate::dsv::check_layout(n, n_nodes)?;
    let backend = ClusterBackend::new(n_nodes, model);
    let mut states: Vec<DistributedStateVector> = (0..=k).map(|_| backend.allocate(n)).collect();
    ops.state_resets += 1;

    tqsim::run_tree_nodes(
        &backend,
        &subcircuits,
        &compiled,
        &partition.tree,
        noise,
        &mut states,
        &mut counts,
        &mut ops,
        &mut rng,
        options,
    );

    let mut counters = ClusterCounters::default();
    for s in &states {
        counters.merge(&s.counters);
    }
    counters.noise_ops += ops.noise_ops;
    Ok(DistRunResult {
        counts,
        counters,
        ops,
    })
}

// ---- analytic estimator (for widths too large to execute here) ------------

/// Per-shot modeled cluster time of one full noisy pass over `circuit`
/// (computed from the circuit's local/global gate mix without executing).
///
/// Noise is charged at 3 compute passes + 1 all-reduce per channel
/// application — the marginal/branch/renormalise pattern of trajectory
/// sampling.
pub fn estimate_shot_seconds(
    circuit: &Circuit,
    noise: &NoiseModel,
    n_nodes: usize,
    model: &InterconnectModel,
) -> f64 {
    assert!(n_nodes.is_power_of_two() && n_nodes >= 1, "bad node count");
    let g = n_nodes.trailing_zeros() as u16;
    let local_n = circuit.n_qubits().saturating_sub(g);
    let slice_len = 1u64 << local_n;
    let half_bytes = slice_len / 2 * 16;
    let mut t = 0.0;
    for gate in circuit {
        t += gate_seconds(gate, local_n, slice_len, half_bytes, model);
        let n_channels = if gate.arity() == 1 {
            noise.channels_1q().len()
        } else {
            noise.channels_2q().len() * gate.arity().min(2)
        } as f64;
        t += n_channels * (3.0 * model.compute_time(slice_len) + model.allreduce_time(n_nodes));
    }
    t
}

fn gate_seconds(
    gate: &Gate,
    local_n: u16,
    slice_len: u64,
    half_bytes: u64,
    model: &InterconnectModel,
) -> f64 {
    let globals = gate.qubits().iter().filter(|&&q| q >= local_n).count() as f64;
    // Each global qubit costs a distributed swap there and back.
    model.compute_time(slice_len) + 2.0 * globals * model.exchange_time(half_bytes)
}

/// Modeled cluster time of a full tree execution: instances-weighted
/// subcircuit times plus one state-copy pass per node per subcircuit
/// execution.
pub fn estimate_tree_seconds(
    circuit: &Circuit,
    noise: &NoiseModel,
    partition: &Partition,
    n_nodes: usize,
    model: &InterconnectModel,
) -> f64 {
    let g = n_nodes.trailing_zeros() as u16;
    let slice_len = 1u64 << circuit.n_qubits().saturating_sub(g);
    let subs = partition.subcircuits(circuit);
    let mut total = 0.0;
    for (i, sub) in subs.iter().enumerate() {
        let per_exec =
            estimate_shot_seconds(sub, noise, n_nodes, model) + model.compute_time(slice_len);
        total += partition.tree.instances(i) as f64 * per_exec;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqsim::Strategy;
    use tqsim_circuit::generators;

    #[test]
    fn distributed_baseline_matches_single_node_statistics() {
        let circuit = generators::bv(8);
        let noise = NoiseModel::sycamore();
        let shots = 600u64;
        let partition = Strategy::Baseline.plan(&circuit, &noise, shots).unwrap();
        let model = InterconnectModel::commodity_cluster();
        let dist = run_distributed(&circuit, &noise, &partition, 4, model, 11).unwrap();
        assert_eq!(dist.counts.total(), shots);
        // Single-node reference.
        let single = tqsim::TreeExecutor::new(&circuit, &noise, partition)
            .unwrap()
            .run(11);
        let secret = 0b111_1110u64;
        let hit = |c: &Counts| {
            (0..2u64).map(|a| c.get(secret | (a << 7))).sum::<u64>() as f64 / c.total() as f64
        };
        assert!((hit(&dist.counts) - hit(&single.counts)).abs() < 0.07);
    }

    #[test]
    fn distributed_tree_produces_expected_outcomes_and_comm() {
        let circuit = generators::qft(8);
        let noise = NoiseModel::sycamore();
        let partition = Strategy::Custom {
            arities: vec![10, 2, 2],
        }
        .plan(&circuit, &noise, 40)
        .unwrap();
        let model = InterconnectModel::commodity_cluster();
        let r = run_distributed(&circuit, &noise, &partition, 4, model, 3).unwrap();
        assert_eq!(r.counts.total(), 40);
        // QFT's high-qubit controlled phases force communication.
        assert!(r.counters.exchanges > 0);
        assert!(r.counters.simulated_seconds > 0.0);
        assert_eq!(r.counters.state_copies, 10 + 20 + 40);
    }

    #[test]
    fn estimator_strong_scaling_shape() {
        // Fixed problem: compute shrinks with nodes, comm grows — speedup
        // must flatten (the Fig. 13a shape).
        let circuit = generators::qft(14);
        let noise = NoiseModel::sycamore();
        let model = InterconnectModel::commodity_cluster();
        let t1 = estimate_shot_seconds(&circuit, &noise, 1, &model);
        let t8 = estimate_shot_seconds(&circuit, &noise, 8, &model);
        let t32 = estimate_shot_seconds(&circuit, &noise, 32, &model);
        assert!(t8 < t1, "8 nodes should beat 1");
        let s8 = t1 / t8;
        let s32 = t1 / t32;
        assert!(
            s32 < 32.0 * 0.8,
            "communication must erode ideal scaling, got {s32}"
        );
        assert!(s32 > s8 * 0.5, "still roughly monotone");
    }

    #[test]
    fn estimator_matches_counted_time_order_of_magnitude() {
        let circuit = generators::qft(8);
        let noise = NoiseModel::ideal();
        let model = InterconnectModel::commodity_cluster();
        let partition = Strategy::Baseline.plan(&circuit, &noise, 3).unwrap();
        let run = run_distributed(&circuit, &noise, &partition, 4, model, 1).unwrap();
        let est = 3.0 * estimate_shot_seconds(&circuit, &noise, 4, &model);
        let ratio = run.counters.simulated_seconds / est;
        assert!(
            (0.3..3.0).contains(&ratio),
            "counted {} vs estimated {est} (ratio {ratio})",
            run.counters.simulated_seconds
        );
    }

    #[test]
    fn tree_estimate_beats_baseline_estimate() {
        let circuit = generators::qft(12);
        let noise = NoiseModel::sycamore();
        let model = InterconnectModel::commodity_cluster();
        let base = Strategy::Baseline.plan(&circuit, &noise, 1000).unwrap();
        let dcp = Strategy::default_dcp()
            .plan(&circuit, &noise, 1000)
            .unwrap();
        let tb = estimate_tree_seconds(&circuit, &noise, &base, 8, &model);
        let td = estimate_tree_seconds(&circuit, &noise, &dcp, 8, &model);
        assert!(td < tb, "TQSim {td} should beat baseline {tb}");
    }

    #[test]
    fn fused_distributed_counts_are_bit_identical_to_unfused() {
        let circuit = generators::qft(8);
        let noise = NoiseModel::sycamore();
        let partition = tqsim::Strategy::Custom {
            arities: vec![6, 2, 2],
        }
        .plan(&circuit, &noise, 24)
        .unwrap();
        let model = InterconnectModel::commodity_cluster();
        for seed in [3u64, 77] {
            let fused = run_distributed_with_options(
                &circuit,
                &noise,
                &partition,
                4,
                model,
                seed,
                tqsim::ExecOptions::default(),
            )
            .unwrap();
            let unfused = run_distributed_with_options(
                &circuit,
                &noise,
                &partition,
                4,
                model,
                seed,
                tqsim::ExecOptions {
                    fusion: false,
                    ..tqsim::ExecOptions::default()
                },
            )
            .unwrap();
            assert_eq!(fused.counts, unfused.counts, "seed {seed}");
            assert_eq!(fused.ops.total_gates(), unfused.ops.total_gates());
            assert_eq!(fused.ops.noise_ops, unfused.ops.noise_ops);
            assert!(
                fused.ops.amp_passes < unfused.ops.amp_passes,
                "distributed fusion must reduce passes ({} vs {})",
                fused.ops.amp_passes,
                unfused.ops.amp_passes
            );
        }
    }

    #[test]
    fn distributed_replay_matches_serial_executor_bit_for_bit() {
        // Same seed, same partition: the distributed fused replay must
        // reproduce the serial single-node executor's Counts exactly, at
        // every node count, including oversampled leaves (batched CDF walk).
        let circuit = generators::qft(8);
        let model = InterconnectModel::commodity_cluster();
        for noise in [NoiseModel::ideal(), NoiseModel::sycamore()] {
            let partition = tqsim::Strategy::Custom {
                arities: vec![5, 2, 2],
            }
            .plan(&circuit, &noise, 20)
            .unwrap();
            for leaf_samples in [1u32, 3] {
                let options = tqsim::ExecOptions {
                    leaf_samples,
                    ..tqsim::ExecOptions::default()
                };
                let serial = tqsim::TreeExecutor::new(&circuit, &noise, partition.clone())
                    .unwrap()
                    .run_with_options(9, options);
                for nodes in [2usize, 4, 8] {
                    let dist = run_distributed_with_options(
                        &circuit, &noise, &partition, nodes, model, 9, options,
                    )
                    .unwrap();
                    assert_eq!(
                        dist.counts,
                        serial.counts,
                        "{} nodes, {leaf_samples} leaf samples, {}",
                        nodes,
                        noise.name()
                    );
                    // The dynamic fuser is state-agnostic: identical sweep
                    // sequence, identical pass accounting on every backend.
                    assert_eq!(dist.ops.amp_passes, serial.ops.amp_passes);
                    assert_eq!(dist.ops.noise_ops, serial.ops.noise_ops);
                    assert_eq!(dist.ops.state_copies, serial.ops.state_copies);
                    assert_eq!(dist.ops.samples, serial.ops.samples);
                }
            }
        }
    }

    #[test]
    fn bad_node_count_is_an_error() {
        let circuit = generators::bv(6);
        let noise = NoiseModel::ideal();
        let partition = Strategy::Baseline.plan(&circuit, &noise, 5).unwrap();
        let model = InterconnectModel::commodity_cluster();
        assert!(run_distributed(&circuit, &noise, &partition, 3, model, 0).is_err());
    }
}
