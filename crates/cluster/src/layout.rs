//! Deferred-swap layout tracking for exchange batching.
//!
//! Eager distributed execution pays a full dswap round-trip per
//! boundary-straddling op: swap the global qubit down to a scratch local
//! position, apply, swap it straight back. When a *run* of ops shares the
//! same global qubits (a fused window straddling the node boundary, a
//! ladder of `cx(global, local_i)` gates), the swap-backs are pure waste —
//! qsim-style global gate scheduling leaves the swaps in place and only
//! undoes them when a later access conflicts.
//!
//! [`LayoutTracker`] is the single decision procedure for that deferral,
//! shared by the in-process [`crate::DistributedStateVector`] and the
//! multi-process `tqsim-shard` coordinator so both backends perform — and
//! count — **exactly** the same exchange sequence. The tracker never moves
//! amplitudes itself: every decision returns the dswaps the caller must
//! execute, in order, and commits the resulting logical↔physical
//! permutation.

/// How to execute one dense op (gate / Mat2 / Mat4 / Mat8) under the
/// current deferred layout. Swap lists are `(global_bit, local_dst)` pairs
/// in execution order, exactly as
/// [`crate::DistributedStateVector`]'s eager remap would issue them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DensePlan {
    /// Every operand already sits at a node-local physical position: apply
    /// at `phys` (same order as the logical operand list), no exchanges.
    InPlace {
        /// Physical position of each logical operand.
        phys: Vec<u16>,
    },
    /// A conflicting access: undo the active swaps (in the given order),
    /// after which every operand is local at its logical position.
    FlushThenLocal {
        /// Deferred swaps to undo, in execution order.
        undo: Vec<(u16, u16)>,
    },
    /// A conflicting access on an op that itself straddles the boundary:
    /// undo the active swaps, execute `swaps`, apply at `phys`, and leave
    /// `swaps` deferred (they become the new active set).
    FlushThenRemap {
        /// Deferred swaps to undo first, in execution order.
        undo: Vec<(u16, u16)>,
        /// Fresh dswaps to execute, in execution order.
        swaps: Vec<(u16, u16)>,
        /// Physical position of each logical operand afterwards.
        phys: Vec<u16>,
    },
}

/// Tracks the logical→physical qubit permutation induced by deferred
/// distributed swaps (see the module docs).
#[derive(Clone, Debug)]
pub struct LayoutTracker {
    local_n: u16,
    /// Logical qubit → physical position.
    pos: Vec<u16>,
    /// Physical position → logical qubit (inverse of `pos`).
    occ: Vec<u16>,
    /// Deferred dswaps in application order (undone in reverse).
    active: Vec<(u16, u16)>,
}

impl LayoutTracker {
    /// An identity layout over `n_qubits` with the low `local_n` node-local.
    pub fn new(n_qubits: u16, local_n: u16) -> Self {
        debug_assert!(local_n <= n_qubits);
        LayoutTracker {
            local_n,
            pos: (0..n_qubits).collect(),
            occ: (0..n_qubits).collect(),
            active: Vec::new(),
        }
    }

    /// Whether the layout is canonical (no deferred swaps).
    pub fn is_canonical(&self) -> bool {
        self.active.is_empty()
    }

    /// Whether every qubit in `qs` currently sits at its canonical
    /// position (diagonal runs may then apply without a flush even while
    /// *other* qubits are displaced).
    pub fn is_identity_on<'a>(&self, qs: impl IntoIterator<Item = &'a u16>) -> bool {
        qs.into_iter().all(|&q| self.pos[q as usize] == q)
    }

    /// Forget all deferred swaps without undoing them — valid only when the
    /// amplitudes are about to be overwritten wholesale (reset, copy-in).
    pub fn reset(&mut self) {
        for (i, p) in self.pos.iter_mut().enumerate() {
            *p = i as u16;
        }
        for (i, o) in self.occ.iter_mut().enumerate() {
            *o = i as u16;
        }
        self.active.clear();
    }

    /// The dswaps that restore the canonical layout, in execution order.
    /// Commits the restoration: the tracker is canonical on return, and the
    /// caller must execute every returned swap.
    pub fn decide_sync(&mut self) -> Vec<(u16, u16)> {
        let undo: Vec<(u16, u16)> = self.active.drain(..).rev().collect();
        for &(gb, dst) in &undo {
            let pg = self.local_n + gb;
            self.note_swap(pg, dst);
        }
        debug_assert!(self.is_identity_on(self.occ.iter()));
        undo
    }

    /// Decide how to execute a dense op on logical operands `qs` and commit
    /// the resulting permutation. The remap branch reproduces the eager
    /// scratch-selection rule bit for bit (highest local qubits not used by
    /// the op, assigned low-to-high), so an eager and a batched run issue
    /// identical individual dswaps — batching only *elides* the
    /// swap-back/swap-down pairs between compatible ops.
    pub fn decide_dense(&mut self, qs: &[u16]) -> DensePlan {
        let phys: Vec<u16> = qs.iter().map(|&q| self.pos[q as usize]).collect();
        if phys.iter().all(|&p| p < self.local_n) {
            return DensePlan::InPlace { phys };
        }
        let undo = self.decide_sync();
        if qs.iter().all(|&q| q < self.local_n) {
            return DensePlan::FlushThenLocal { undo };
        }
        // Mirror `DistributedStateVector::remap_to_local`: scratch = the
        // highest local qubits not used by the operation itself, popped
        // from the low end of that descending list.
        let mut qubits = qs.to_vec();
        let mut scratch: Vec<u16> = (0..self.local_n)
            .rev()
            .filter(|q| !qubits.contains(q))
            .take(qubits.len())
            .collect();
        let mut swaps: Vec<(u16, u16)> = Vec::new();
        for q in qubits.iter_mut() {
            if *q >= self.local_n {
                let dst = scratch
                    .pop()
                    .expect("cluster layouts guarantee >= 3 local qubits");
                let gb = *q - self.local_n;
                swaps.push((gb, dst));
                self.active.push((gb, dst));
                self.note_swap(self.local_n + gb, dst);
                *q = dst;
            }
        }
        DensePlan::FlushThenRemap {
            undo,
            swaps,
            phys: qubits,
        }
    }

    /// Record that the occupants of physical positions `pa` and `pb`
    /// swapped (a dswap is its own inverse, so undo uses the same update).
    fn note_swap(&mut self, pa: u16, pb: u16) {
        let (a, b) = (self.occ[pa as usize], self.occ[pb as usize]);
        self.occ.swap(pa as usize, pb as usize);
        self.pos.swap(a as usize, b as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(t: &mut LayoutTracker, qs: &[u16]) -> (usize, Vec<u16>) {
        // Count the dswaps a caller would execute and return the physical
        // operand positions.
        match t.decide_dense(qs) {
            DensePlan::InPlace { phys } => (0, phys),
            DensePlan::FlushThenLocal { undo } => (undo.len(), qs.to_vec()),
            DensePlan::FlushThenRemap { undo, swaps, phys } => (undo.len() + swaps.len(), phys),
        }
    }

    #[test]
    fn local_ops_never_swap() {
        let mut t = LayoutTracker::new(8, 6);
        assert_eq!(exec(&mut t, &[0, 1]), (0, vec![0, 1]));
        assert!(t.is_canonical());
    }

    #[test]
    fn shared_global_run_pays_one_remap() {
        let mut t = LayoutTracker::new(8, 6);
        // cx(7, 0): q7 is global → one dswap onto scratch 4 (the eager
        // rule collects descending non-operand locals [5, 4] and pops the
        // back).
        let (n, phys) = exec(&mut t, &[7, 0]);
        assert_eq!((n, &phys[..]), (1, &[4u16, 0][..]));
        assert!(!t.is_canonical());
        // Same global qubit, different local partner: zero dswaps.
        for lq in 1..4u16 {
            assert_eq!(exec(&mut t, &[7, lq]), (0, vec![4, lq]));
        }
        // Final sync undoes the single deferred swap.
        assert_eq!(t.decide_sync(), vec![(1, 4)]);
        assert!(t.is_canonical());
    }

    #[test]
    fn conflicting_access_flushes_then_remaps() {
        let mut t = LayoutTracker::new(8, 6);
        exec(&mut t, &[7, 0]); // q7 ↔ scratch 4
                               // An op on logical q4 conflicts: its physical position is global.
        let (n, phys) = exec(&mut t, &[4]);
        assert_eq!((n, &phys[..]), (1, &[4u16][..]));
        assert!(t.is_canonical());
    }

    #[test]
    fn two_globals_then_sync_restores_identity() {
        let mut t = LayoutTracker::new(8, 5);
        let (n, phys) = exec(&mut t, &[7, 6, 0]);
        assert_eq!(n, 2);
        assert!(phys.iter().all(|&p| p < 5));
        assert_eq!(t.decide_sync().len(), 2);
        assert!(t.is_identity_on([0u16, 1, 2, 3, 4, 5, 6, 7].iter()));
    }

    #[test]
    fn reset_forgets_without_undoing() {
        let mut t = LayoutTracker::new(8, 6);
        exec(&mut t, &[7, 0]);
        t.reset();
        assert!(t.is_canonical());
        assert_eq!(exec(&mut t, &[0]), (0, vec![0]));
    }
}
