//! Interconnect and node-throughput model converting counted operations
//! into estimated cluster time (the substitution for real multi-node
//! hardware, see DESIGN.md §2).

/// Performance constants of a simulated cluster.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterconnectModel {
    /// One-way message latency in seconds.
    pub latency_s: f64,
    /// Per-link bandwidth in bytes/second.
    pub bandwidth_bps: f64,
    /// Per-node amplitude-operation throughput (amplitude updates/second).
    pub node_amp_ops_per_s: f64,
}

impl InterconnectModel {
    /// A commodity InfiniBand-class CPU cluster: 2 µs latency, 12.5 GB/s
    /// links, ~2×10⁹ amplitude updates/s per node (multi-core Xeon running
    /// complex AXPY-bound kernels).
    pub fn commodity_cluster() -> Self {
        InterconnectModel {
            latency_s: 2e-6,
            bandwidth_bps: 12.5e9,
            node_amp_ops_per_s: 2.0e9,
        }
    }

    /// Time for every node to process `amps_per_node` amplitude updates in
    /// parallel.
    pub fn compute_time(&self, amps_per_node: u64) -> f64 {
        amps_per_node as f64 / self.node_amp_ops_per_s
    }

    /// Time for a pairwise exchange in which every node sends and receives
    /// `bytes_per_node` (all pairs transfer concurrently).
    pub fn exchange_time(&self, bytes_per_node: u64) -> f64 {
        self.latency_s + bytes_per_node as f64 / self.bandwidth_bps
    }

    /// Time for a scalar all-reduce across `n_nodes` (log-depth tree of
    /// latency-bound messages).
    pub fn allreduce_time(&self, n_nodes: usize) -> f64 {
        self.latency_s * (n_nodes as f64).log2().max(1.0)
    }
}

/// Aggregate counters of a distributed execution, including the modeled
/// time accumulated operation by operation.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClusterCounters {
    /// Gates applied entirely node-locally.
    pub local_gates: u64,
    /// Gates that required global-qubit exchanges.
    pub global_gates: u64,
    /// Pairwise distributed swaps performed.
    pub exchanges: u64,
    /// Total bytes moved between nodes (sum over nodes of sent bytes).
    pub bytes_exchanged: u64,
    /// Total amplitude updates across the cluster.
    pub amp_ops: u64,
    /// Noise-operator applications.
    pub noise_ops: u64,
    /// Full state copies (TQSim reuse) — node-local.
    pub state_copies: u64,
    /// Modeled wall-clock seconds under the configured interconnect.
    pub simulated_seconds: f64,
    /// **Measured** wall-clock seconds spent in exchange rounds — thread
    /// half-slice swaps on the in-process backend, TCP round-trips on the
    /// multi-process shard backend. Kept alongside `simulated_seconds` so
    /// model-vs-measured drift is directly visible; excluded from equality
    /// (wall-clock is never deterministic).
    pub measured_exchange_seconds: f64,
}

/// Counter sets compare by their deterministic fields only:
/// `measured_exchange_seconds` is real wall-clock and varies run to run,
/// while everything else is a bit-reproducible function of the executed
/// plan (the cross-backend identity tests rely on exact equality).
impl PartialEq for ClusterCounters {
    fn eq(&self, other: &Self) -> bool {
        self.local_gates == other.local_gates
            && self.global_gates == other.global_gates
            && self.exchanges == other.exchanges
            && self.bytes_exchanged == other.bytes_exchanged
            && self.amp_ops == other.amp_ops
            && self.noise_ops == other.noise_ops
            && self.state_copies == other.state_copies
            && self.simulated_seconds == other.simulated_seconds
    }
}

impl ClusterCounters {
    /// Merge another counter set (e.g. from a second run phase).
    pub fn merge(&mut self, other: &ClusterCounters) {
        self.local_gates += other.local_gates;
        self.global_gates += other.global_gates;
        self.exchanges += other.exchanges;
        self.bytes_exchanged += other.bytes_exchanged;
        self.amp_ops += other.amp_ops;
        self.noise_ops += other.noise_ops;
        self.state_copies += other.state_copies;
        self.simulated_seconds += other.simulated_seconds;
        self.measured_exchange_seconds += other.measured_exchange_seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_are_positive_and_monotone() {
        let m = InterconnectModel::commodity_cluster();
        assert!(m.compute_time(1000) > 0.0);
        assert!(m.exchange_time(1 << 20) > m.exchange_time(1 << 10));
        assert!(m.allreduce_time(32) > m.allreduce_time(2));
    }

    #[test]
    fn latency_floor_on_exchanges() {
        let m = InterconnectModel::commodity_cluster();
        assert!(m.exchange_time(0) >= m.latency_s);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ClusterCounters {
            local_gates: 2,
            simulated_seconds: 1.0,
            ..Default::default()
        };
        let b = ClusterCounters {
            local_gates: 3,
            simulated_seconds: 0.5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.local_gates, 5);
        assert!((a.simulated_seconds - 1.5).abs() < 1e-12);
    }
}
