//! # tqsim-cluster
//!
//! qHiPSTER-style distributed state-vector substrate — the multi-node
//! evaluation platform of the TQSim reproduction (paper §5.3, Fig. 13).
//!
//! The full amplitude array is sliced across simulated nodes (one thread
//! per node); gates on global qubits perform the pairwise half-slice
//! exchanges a real cluster would, with every byte counted and priced by an
//! [`InterconnectModel`]. Results are validated bit-exactly against the
//! single-node engine, and an analytic estimator extrapolates the Fig. 13
//! strong/weak-scaling curves to widths this environment cannot execute.
//!
//! ```
//! use tqsim_cluster::{DistributedStateVector, InterconnectModel};
//! use tqsim_statevec::QuantumState;
//! use tqsim_circuit::generators;
//!
//! let circuit = generators::qft(6);
//! let model = InterconnectModel::commodity_cluster();
//! let mut dsv = DistributedStateVector::zero(6, 4, model)?;
//! for gate in &circuit {
//!     dsv.apply_gate(gate);
//! }
//! assert!((dsv.norm_sqr() - 1.0).abs() < 1e-9);
//! assert!(dsv.counters.exchanges > 0); // QFT touches global qubits
//! # Ok::<(), tqsim_cluster::ClusterError>(())
//! ```

#![warn(missing_docs)]

pub mod dsv;
pub mod layout;
pub mod model;
pub mod runner;

pub use dsv::{check_layout, ClusterBackend, ClusterError, ClusterObs, DistributedStateVector};
pub use layout::{DensePlan, LayoutTracker};
pub use model::{ClusterCounters, InterconnectModel};
pub use runner::{
    estimate_shot_seconds, estimate_tree_seconds, run_distributed, run_distributed_with_options,
    DistRunResult,
};
