//! Cross-crate cluster integration tests: the distributed engine must agree
//! with the single-node engine, and the scaling estimator must reproduce the
//! Fig. 13 shapes.

use tqsim::Strategy;
use tqsim_circuit::generators;
use tqsim_cluster::{
    estimate_shot_seconds, estimate_tree_seconds, run_distributed, DistributedStateVector,
    InterconnectModel,
};
use tqsim_noise::NoiseModel;
use tqsim_statevec::{QuantumState, StateVector};

#[test]
fn distributed_engine_is_bit_exact_on_ideal_circuits() {
    let model = InterconnectModel::commodity_cluster();
    for (name, circuit) in [
        ("qft_9", generators::qft(9)),
        ("bv_9", generators::bv(9)),
        ("qv_10", generators::qv(10, 3)),
        ("mul_13", generators::mul(3, 3, 2)),
    ] {
        let n = circuit.n_qubits();
        let mut reference = StateVector::zero(n);
        reference.apply_circuit(&circuit);
        for nodes in [2usize, 8] {
            let mut dsv = DistributedStateVector::zero(n, nodes, model).unwrap();
            for gate in &circuit {
                dsv.apply_gate(gate);
            }
            let gathered = dsv.gather();
            for (i, (a, b)) in gathered
                .amplitudes()
                .iter()
                .zip(reference.amplitudes())
                .enumerate()
            {
                assert!((a - b).norm() < 1e-9, "{name}, {nodes} nodes, amp {i}");
            }
        }
    }
}

#[test]
fn distributed_noisy_run_matches_single_node_statistics() {
    let circuit = generators::bv(8);
    let noise = NoiseModel::sycamore();
    let shots = 800u64;
    let partition = Strategy::Custom {
        arities: vec![80, 10],
    }
    .plan(&circuit, &noise, shots)
    .unwrap();
    let model = InterconnectModel::commodity_cluster();

    let dist = run_distributed(&circuit, &noise, &partition, 4, model, 17).unwrap();
    let single = tqsim::TreeExecutor::new(&circuit, &noise, partition)
        .unwrap()
        .run(17);

    let secret = 0b111_1110u64;
    let hit = |c: &tqsim::Counts| {
        (0..2u64).map(|a| c.get(secret | (a << 7))).sum::<u64>() as f64 / c.total() as f64
    };
    assert_eq!(dist.counts.total(), single.counts.total());
    assert!(
        (hit(&dist.counts) - hit(&single.counts)).abs() < 0.06,
        "dist {:.3} vs single {:.3}",
        hit(&dist.counts),
        hit(&single.counts)
    );
}

#[test]
fn strong_scaling_improves_then_saturates() {
    // Fig. 13a shape: larger circuits scale better than smaller ones.
    let noise = NoiseModel::sycamore();
    let model = InterconnectModel::commodity_cluster();
    let small = generators::bv(16);
    let large = generators::qft(24);
    let speedup = |c: &tqsim_circuit::Circuit, nodes: usize| {
        estimate_shot_seconds(c, &noise, 1, &model)
            / estimate_shot_seconds(c, &noise, nodes, &model)
    };
    let s_small = speedup(&small, 32);
    let s_large = speedup(&large, 32);
    assert!(
        s_large > s_small,
        "large circuit should scale better: {s_large:.1} vs {s_small:.1}"
    );
    assert!(s_large < 32.0, "communication must keep speedup sublinear");
}

#[test]
fn tqsim_beats_baseline_on_the_cluster_estimator() {
    // Fig. 13b: TQSim holds its advantage at every node count.
    let circuit = generators::qft(16);
    let noise = NoiseModel::sycamore();
    let model = InterconnectModel::commodity_cluster();
    let shots = 8_192;
    let base = Strategy::Baseline.plan(&circuit, &noise, shots).unwrap();
    let dcp = Strategy::default_dcp()
        .plan(&circuit, &noise, shots)
        .unwrap();
    for nodes in [1usize, 4, 16, 32] {
        let tb = estimate_tree_seconds(&circuit, &noise, &base, nodes, &model);
        let td = estimate_tree_seconds(&circuit, &noise, &dcp, nodes, &model);
        assert!(
            tb / td > 1.3,
            "{nodes} nodes: baseline {tb:.2}s vs tqsim {td:.2}s"
        );
    }
}

#[test]
fn cluster_noise_trajectories_preserve_norm() {
    // Failure-sensitive path: damping channels hit marginals, antidiagonal
    // Kraus ops and renormalisation across node boundaries.
    use rand::SeedableRng;
    let model = InterconnectModel::commodity_cluster();
    let noise = tqsim_noise::NoiseModel::amplitude_damping(0.05);
    let circuit = generators::qft(8);
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let mut dsv = DistributedStateVector::zero(8, 4, model).unwrap();
    for gate in &circuit {
        dsv.apply_gate(gate);
        noise.apply_after_gate(&mut dsv, gate, &mut rng);
        assert!((dsv.norm_sqr() - 1.0).abs() < 1e-8);
    }
}
