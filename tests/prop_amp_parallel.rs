//! Amplitude-level parallelism is invisible in results: `Counts` and
//! `amp_passes` must be bit-identical whether the amplitude worker pool
//! is capped at 1, 2 or 4 threads — at engine parallelism 1 and 4, on
//! the single-node and the 4-node cluster backend, under ideal and
//! sycamore noise — because the shim pool splits every amplitude pass
//! at fixed chunk boundaries derived from the work size alone, never
//! from the thread count. The tests force the parallel kernel path by
//! dropping `par_min_len` to 1 so even 6-qubit slices are chunked.
//!
//! Also: widening the fusion window to 3-qubit `Mat8` clusters changes
//! the pass count, never the histogram.

use proptest::prelude::*;
use std::sync::{Arc, Mutex};
use tqsim::Strategy as PlanStrategy;
use tqsim_circuit::{generators, Circuit, Gate, GateKind};
use tqsim_cluster::{ClusterBackend, InterconnectModel};
use tqsim_engine::{Engine, EngineConfig, FusionConfig, JobPlan, PlannedJob};
use tqsim_noise::NoiseModel;
use tqsim_statevec::kernels::{set_par_min_len, DEFAULT_PAR_MIN_LEN};

/// Serialises the tests in this binary: `par_min_len` is a process-wide
/// knob, so only one test may hold it at 1 at a time.
static PAR_KNOB: Mutex<()> = Mutex::new(());

/// RAII: force the parallel kernel path for the duration of a test and
/// restore the default afterwards (also on panic, via `Drop`).
struct ForceParallel<'a> {
    _guard: std::sync::MutexGuard<'a, ()>,
}

impl ForceParallel<'_> {
    fn new() -> Self {
        let guard = PAR_KNOB.lock().unwrap_or_else(|e| e.into_inner());
        set_par_min_len(1);
        ForceParallel { _guard: guard }
    }
}

impl Drop for ForceParallel<'_> {
    fn drop(&mut self) {
        set_par_min_len(DEFAULT_PAR_MIN_LEN);
    }
}

/// Random gates over `n` qubits, mixing 1q, rotation and 2q kinds so
/// compiled plans hold fused `Mat4` windows (and, at window 3, `Mat8`
/// clusters) alongside diagonal runs.
fn arb_gate(n: u16) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let angle = -6.3f64..6.3;
    prop_oneof![
        (q.clone(), 0usize..6).prop_map(move |(q, k)| {
            let kind = [
                GateKind::X,
                GateKind::H,
                GateKind::S,
                GateKind::T,
                GateKind::Sx,
                GateKind::Sw,
            ][k];
            Gate::new(kind, &[q])
        }),
        (q.clone(), angle.clone(), 0usize..4).prop_map(move |(q, t, k)| {
            let kind = [
                GateKind::Rx(t),
                GateKind::Rz(t),
                GateKind::Phase(t),
                GateKind::Ry(t),
            ][k];
            Gate::new(kind, &[q])
        }),
        (q.clone(), q, angle, 0usize..5).prop_filter_map("distinct qubits", move |(a, b, t, k)| {
            if a == b {
                return None;
            }
            let kind = [
                GateKind::Cx,
                GateKind::Cz,
                GateKind::CPhase(t),
                GateKind::Swap,
                GateKind::Rzz(t),
            ][k];
            Some(Gate::new(kind, &[a, b]))
        }),
    ]
}

fn arb_circuit(n: u16, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(n), 2..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(*g.kind(), g.qubits());
        }
        c
    })
}

fn noise_for(idx: usize) -> NoiseModel {
    if idx == 0 {
        NoiseModel::ideal()
    } else {
        NoiseModel::sycamore()
    }
}

/// Run `job` with the amplitude pool capped at `amp_threads` for any
/// work submitted from this thread and its engine workers.
fn run_capped<B: tqsim_statevec::PooledBackend>(
    engine: &Engine<B>,
    job: &PlannedJob,
    amp_threads: usize,
) -> tqsim::RunResult {
    rayon::ThreadPoolBuilder::new()
        .num_threads(amp_threads)
        .build()
        .expect("shim pools are infallible to build")
        .install(|| engine.run_planned(job))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn counts_and_passes_invariant_under_amp_thread_count(
        circuit in arb_circuit(6, 16),
        noise_idx in 0usize..2,
        seed in 0u64..1000,
    ) {
        let _force = ForceParallel::new();
        let noise = noise_for(noise_idx);
        let plan = Arc::new(
            JobPlan::plan(&circuit, &noise, 6, &PlanStrategy::Custom { arities: vec![3, 2] })
                .unwrap(),
        );
        // The reference: one amplitude thread under a serial single-node
        // engine — the fully sequential execution.
        let reference = run_capped(
            &Engine::new(EngineConfig::default().parallelism(1)),
            &PlannedJob::new(Arc::clone(&plan)).seed(seed),
            1,
        );
        let model = InterconnectModel::commodity_cluster();
        for amp_threads in [2usize, 4] {
            for workers in [1usize, 4] {
                let single = Engine::new(EngineConfig::default().parallelism(workers));
                let r = run_capped(
                    &single,
                    &PlannedJob::new(Arc::clone(&plan)).seed(seed),
                    amp_threads,
                );
                prop_assert_eq!(
                    &r.counts, &reference.counts,
                    "single node, {} amp threads, {} workers", amp_threads, workers
                );
                prop_assert_eq!(
                    r.ops.amp_passes, reference.ops.amp_passes,
                    "single node, {} amp threads, {} workers", amp_threads, workers
                );

                let cluster = Engine::with_backend(
                    EngineConfig::default().parallelism(workers),
                    ClusterBackend::new(4, model),
                );
                let r = run_capped(
                    &cluster,
                    &PlannedJob::new(Arc::clone(&plan)).seed(seed),
                    amp_threads,
                );
                prop_assert_eq!(
                    &r.counts, &reference.counts,
                    "4-node cluster, {} amp threads, {} workers", amp_threads, workers
                );
                prop_assert_eq!(
                    r.ops.amp_passes, reference.ops.amp_passes,
                    "4-node cluster, {} amp threads, {} workers", amp_threads, workers
                );
            }
        }
    }

    #[test]
    fn mat8_clusters_preserve_the_histogram_and_cut_passes_only(
        circuit in arb_circuit(6, 16),
        noise_idx in 0usize..2,
        seed in 0u64..1000,
    ) {
        let _force = ForceParallel::new();
        let noise = noise_for(noise_idx);
        let strategy = PlanStrategy::Custom { arities: vec![3, 2] };
        let narrow = Arc::new(JobPlan::plan(&circuit, &noise, 6, &strategy).unwrap());
        let wide = Arc::new(
            JobPlan::plan_with(
                &circuit,
                &noise,
                6,
                &strategy,
                FusionConfig { max_fuse_qubits: 3, boundary: false },
            )
            .unwrap(),
        );
        let engine = Engine::new(EngineConfig::default().parallelism(2));
        let base = run_capped(&engine, &PlannedJob::new(Arc::clone(&narrow)).seed(seed), 2);
        let fused = run_capped(&engine, &PlannedJob::new(Arc::clone(&wide)).seed(seed), 2);
        // `Mat8` clusters are an execution-plan change, not a semantic
        // one: identical histograms, never more amplitude passes.
        prop_assert_eq!(&fused.counts, &base.counts);
        prop_assert!(
            fused.ops.amp_passes <= base.ops.amp_passes,
            "window 3 took {} passes, window 2 took {}",
            fused.ops.amp_passes,
            base.ops.amp_passes
        );
        // And on the cluster backend the widened plan replays to the
        // same histogram as single-node.
        let cluster = Engine::with_backend(
            EngineConfig::default().parallelism(2),
            ClusterBackend::new(4, InterconnectModel::commodity_cluster()),
        );
        let r = run_capped(&cluster, &PlannedJob::new(Arc::clone(&wide)).seed(seed), 2);
        prop_assert_eq!(&r.counts, &base.counts);
    }
}

/// A deterministic (non-property) anchor: the 6-qubit QFT under sycamore
/// noise lands the same histogram at every amp-thread cap, and the wide
/// window strictly reduces passes for this known-fusable structure.
#[test]
fn qft_anchor_thread_sweep_and_mat8_gain() {
    let _force = ForceParallel::new();
    let circuit = generators::qft(6);
    let noise = NoiseModel::sycamore();
    let strategy = PlanStrategy::Custom {
        arities: vec![3, 2],
    };
    let narrow = Arc::new(JobPlan::plan(&circuit, &noise, 8, &strategy).unwrap());
    let wide = Arc::new(
        JobPlan::plan_with(
            &circuit,
            &noise,
            8,
            &strategy,
            FusionConfig {
                max_fuse_qubits: 3,
                boundary: false,
            },
        )
        .unwrap(),
    );
    let engine = Engine::new(EngineConfig::default().parallelism(2));
    let reference = run_capped(&engine, &PlannedJob::new(Arc::clone(&narrow)).seed(11), 1);
    for amp_threads in [2usize, 4] {
        let r = run_capped(
            &engine,
            &PlannedJob::new(Arc::clone(&narrow)).seed(11),
            amp_threads,
        );
        assert_eq!(r.counts, reference.counts, "{amp_threads} amp threads");
        assert_eq!(r.ops, reference.ops, "{amp_threads} amp threads");
    }
    let fused = run_capped(&engine, &PlannedJob::new(Arc::clone(&wide)).seed(11), 2);
    assert_eq!(fused.counts, reference.counts);
    assert!(
        fused.ops.amp_passes < reference.ops.amp_passes,
        "QFT gains from Mat8 clusters: {} vs {}",
        fused.ops.amp_passes,
        reference.ops.amp_passes
    );
}
