//! Integration tests of the `tqsim-engine` parallel tree engine: scheduling
//! must never change results, pooling must eliminate steady-state
//! allocations, and the batched job API must agree with the single-run
//! paths.

use tqsim::{Counts, Strategy, Tqsim};
use tqsim_circuit::{generators, Circuit};
use tqsim_engine::{Engine, EngineConfig, JobSpec, RunParallel};
use tqsim_noise::NoiseModel;

fn engine_run(circuit: &Circuit, shots: u64, seed: u64, workers: usize) -> tqsim::RunResult {
    let engine = Engine::new(EngineConfig::default().parallelism(workers));
    let job = JobSpec::new(circuit).shots(shots).seed(seed);
    engine
        .submit(vec![job])
        .run()
        .expect("plannable")
        .jobs
        .remove(0)
}

/// The acceptance property: for a fixed seed, engine output `Counts` are
/// byte-identical at parallelism 1, 2, 4 and 8, across circuit families.
#[test]
fn parallel_equals_serial_across_generators() {
    let qaoa = generators::qaoa_random(8, 12, 7, 0.4, 0.8).0;
    let cases: Vec<(&str, Circuit)> = vec![
        ("bv", generators::bv(8)),
        ("qft", generators::qft(8)),
        ("qaoa", qaoa),
    ];
    for (name, circuit) in &cases {
        for &(shots, seed) in &[(200u64, 11u64), (501, 12)] {
            let reference = engine_run(circuit, shots, seed, 1);
            assert!(reference.counts.total() >= shots);
            for workers in [2usize, 4, 8] {
                let parallel = engine_run(circuit, shots, seed, workers);
                assert_eq!(
                    reference.counts, parallel.counts,
                    "{name}: {workers} workers changed the histogram (shots={shots}, seed={seed})"
                );
                assert_eq!(
                    reference.ops, parallel.ops,
                    "{name}: {workers} workers changed the op accounting"
                );
            }
            // And a different seed must (overwhelmingly) differ.
            let other = engine_run(circuit, shots, seed ^ 0xABCD, 4);
            assert_ne!(reference.counts, other.counts, "{name}: seed had no effect");
        }
    }
}

/// Strategy coverage: parallelism-invariance is a property of the engine,
/// not of any particular tree shape.
#[test]
fn parallel_equals_serial_across_strategies() {
    let circuit = generators::qft(8);
    for strategy in [
        Strategy::Baseline,
        Strategy::Uniform { k: 3 },
        Strategy::Exponential { k: 3 },
        Strategy::Custom {
            arities: vec![50, 2, 2],
        },
    ] {
        let run = |workers: usize| {
            let engine = Engine::new(EngineConfig::default().parallelism(workers));
            let job = JobSpec::new(&circuit)
                .shots(200)
                .strategy(strategy.clone())
                .seed(3);
            engine.submit(vec![job]).run().unwrap().jobs.remove(0)
        };
        let a = run(1);
        let b = run(8);
        assert_eq!(a.counts, b.counts, "{strategy:?}");
        assert_eq!(a.ops, b.ops, "{strategy:?}");
    }
}

/// After a warm-up run (plus an explicit prewarm to cover schedule
/// variance), executing further trees performs zero heap allocations of
/// state buffers — the pool's allocation counter stands still.
#[test]
fn steady_state_runs_are_allocation_free() {
    let circuit = generators::qft(10);
    let engine = Engine::new(EngineConfig::default().parallelism(4));
    let spec = |seed| {
        JobSpec::new(&circuit)
            .shots(256)
            .strategy(Strategy::Custom {
                arities: vec![64, 2, 2],
            })
            .seed(seed)
    };
    engine.submit(vec![spec(1)]).run().unwrap();
    engine.prewarm(10, 3);
    let warmed = engine.pool_stats().allocations;
    for seed in 2..6 {
        engine.submit(vec![spec(seed)]).run().unwrap();
    }
    let stats = engine.pool_stats();
    assert_eq!(
        stats.allocations, warmed,
        "steady-state tree execution must reuse pooled buffers only"
    );
    assert!(
        stats.reuses >= 4 * (64 + 128 + 256),
        "every node drew from the pool"
    );
    assert_eq!(stats.outstanding, 0, "all buffers returned after the batch");
}

/// `Counts::merge` is the reduction the engine depends on; pin its
/// arithmetic and its width guard.
#[test]
fn counts_merge_accumulates() {
    let mut a = Counts::new(4);
    a.increment(0b0011);
    a.increment(0b0011);
    a.increment(0b1000);
    let mut b = Counts::new(4);
    b.increment(0b0011);
    b.increment(0b0101);
    a.merge(&b);
    assert_eq!(a.get(0b0011), 3);
    assert_eq!(a.get(0b0101), 1);
    assert_eq!(a.get(0b1000), 1);
    assert_eq!(a.total(), 5);
    assert_eq!(a.distinct(), 3);
    // Merging an empty histogram is the identity.
    let before = a.clone();
    a.merge(&Counts::new(4));
    assert_eq!(a, before);
}

#[test]
#[should_panic(expected = "different widths")]
fn counts_merge_rejects_width_mismatch() {
    let mut a = Counts::new(4);
    a.merge(&Counts::new(5));
}

/// The `.parallelism(n)` builder option routes through the engine and
/// produces the same outcomes as an explicit engine run.
#[test]
fn tqsim_builder_parallelism_wiring() {
    let circuit = generators::bv(8);
    let sim = Tqsim::new(&circuit)
        .noise(NoiseModel::sycamore())
        .shots(300)
        .seed(21)
        .parallelism(4);
    let via_builder = sim.run_parallel().unwrap();
    let engine = Engine::new(EngineConfig::default().parallelism(1));
    let via_engine = engine.run_sim(&sim).unwrap();
    assert_eq!(via_builder.counts, via_engine.counts);
    assert!(via_builder.counts.total() >= 300);
}

/// Batched submission: per-job results match the same jobs run one by one
/// (planning dedup must be semantically invisible).
#[test]
fn batch_matches_individual_runs() {
    let qft = generators::qft(8);
    let bv = generators::bv(8);
    let engine = Engine::new(EngineConfig::default().parallelism(2));
    let jobs = vec![
        JobSpec::new(&qft).shots(150).seed(1),
        JobSpec::new(&qft).shots(150).seed(2),
        JobSpec::new(&bv).shots(100).seed(3),
    ];
    let batch = engine.submit(jobs.clone()).run().unwrap();
    assert_eq!(batch.plans.planned, 2);
    assert_eq!(batch.plans.reused, 1);
    for (job, batched) in jobs.into_iter().zip(&batch.jobs) {
        let solo = engine.submit(vec![job]).run().unwrap().jobs.remove(0);
        assert_eq!(solo.counts, batched.counts);
        assert_eq!(solo.ops, batched.ops);
    }
}
