//! Service-layer integration tests: concurrency determinism (N concurrent
//! clients receive `Counts` bit-identical to a serial `Engine::submit`),
//! cross-request plan-cache accounting, and a loopback smoke test of the
//! TCP wire protocol.

use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use tqsim::{Counts, RunResult, Strategy as PlanStrategy};
use tqsim_circuit::{generators, Circuit, Gate, GateKind};
use tqsim_engine::{Engine, EngineConfig, JobSpec};
use tqsim_noise::NoiseModel;
use tqsim_service::{json, wire, BackendPolicy, JobRequest, Service, ServiceConfig, Ticket};

/// Random gates over the wire-transportable catalogue.
fn arb_gate(n: u16) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let angle = -6.3f64..6.3;
    prop_oneof![
        (q.clone(), 0usize..8).prop_map(move |(q, k)| {
            let kind = [
                GateKind::X,
                GateKind::Y,
                GateKind::Z,
                GateKind::H,
                GateKind::S,
                GateKind::T,
                GateKind::Sx,
                GateKind::Id,
            ][k];
            Gate::new(kind, &[q])
        }),
        (q.clone(), angle.clone(), 0usize..4).prop_map(move |(q, t, k)| {
            let kind = [
                GateKind::Rx(t),
                GateKind::Rz(t),
                GateKind::Phase(t),
                GateKind::Ry(t),
            ][k];
            Gate::new(kind, &[q])
        }),
        (q.clone(), q, angle, 0usize..5).prop_filter_map("distinct qubits", move |(a, b, t, k)| {
            if a == b {
                return None;
            }
            let kind = [
                GateKind::Cx,
                GateKind::Cz,
                GateKind::CPhase(t),
                GateKind::Swap,
                GateKind::Rzz(t),
            ][k];
            Some(Gate::new(kind, &[a, b]))
        }),
    ]
}

fn arb_circuit(n: u16, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(n), 4..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(*g.kind(), g.qubits());
        }
        c
    })
}

fn noise_for(idx: usize) -> NoiseModel {
    if idx == 0 {
        NoiseModel::ideal()
    } else {
        NoiseModel::sycamore()
    }
}

/// Serial reference: one-worker engine, strictly sequential batch.
fn serial_reference(circuit: &Circuit, noise: &NoiseModel, seeds: &[u64]) -> Vec<RunResult> {
    let engine = Engine::new(EngineConfig::default().parallelism(1));
    engine
        .submit(
            seeds
                .iter()
                .map(|&seed| {
                    JobSpec::new(circuit)
                        .noise(noise.clone())
                        .shots(12)
                        .strategy(PlanStrategy::Custom {
                            arities: vec![4, 3],
                        })
                        .seed(seed)
                })
                .collect(),
        )
        .sequential()
        .run()
        .unwrap()
        .jobs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance property: N concurrent clients submitting seeded
    /// jobs (ideal + sycamore noise) receive `Counts` bit-identical to a
    /// serial `Engine::submit`, at service concurrency 1, 2 and 4.
    #[test]
    fn concurrent_clients_match_serial_engine_submit(
        circuit in arb_circuit(5, 20),
        noise_idx in 0usize..2,
        base_seed in 0u64..1000,
    ) {
        let noise = noise_for(noise_idx);
        let seeds: Vec<u64> = (0..3).map(|i| base_seed + i).collect();
        let reference = serial_reference(&circuit, &noise, &seeds);
        let shared = Arc::new(circuit);
        for concurrency in [1usize, 2, 4] {
            let service = Service::start(
                ServiceConfig::default()
                    .parallelism(2)
                    .max_concurrent_jobs(concurrency),
            );
            // All clients submit before anyone waits, so jobs genuinely
            // overlap at concurrency > 1.
            let tickets: Vec<Ticket> = seeds
                .iter()
                .enumerate()
                .map(|(i, &seed)| {
                    service
                        .submit(
                            &format!("client-{i}"),
                            JobRequest::new(Arc::clone(&shared))
                                .noise(noise.clone())
                                .shots(12)
                                .strategy(PlanStrategy::Custom {
                                    arities: vec![4, 3],
                                })
                                .seed(seed),
                        )
                        .unwrap()
                })
                .collect();
            for (i, ticket) in tickets.iter().enumerate() {
                let result = ticket.wait().unwrap();
                prop_assert_eq!(
                    &result.counts,
                    &reference[i].counts,
                    "concurrency {}, client {}",
                    concurrency,
                    i
                );
                prop_assert_eq!(&result.ops, &reference[i].ops);
            }
            // Identical planning inputs: one compile, the rest cache hits.
            let stats = service.stats();
            prop_assert_eq!(stats.cache.compiled, 1);
            prop_assert_eq!(stats.cache.hits, seeds.len() as u64 - 1);
            service.shutdown();
        }
    }
}

#[test]
fn cache_accounting_one_compile_per_distinct_circuit() {
    // The acceptance criterion in miniature: a repeated-circuit workload
    // shows cross-request hits with compile count == distinct circuits.
    let service = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(2),
    );
    let qft = Arc::new(generators::qft(6));
    let rebuilt = Arc::new(generators::qft(6)); // structurally equal, new allocation
    let bv = Arc::new(generators::bv(6));
    let submissions = [
        (Arc::clone(&qft), 1u64),
        (Arc::clone(&rebuilt), 2),
        (Arc::clone(&bv), 3),
        (Arc::clone(&qft), 4),
        (rebuilt, 5),
        (bv, 6),
    ];
    let tickets: Vec<Ticket> = submissions
        .iter()
        .map(|(circuit, seed)| {
            service
                .submit(
                    "repeat",
                    JobRequest::new(Arc::clone(circuit)).shots(32).seed(*seed),
                )
                .unwrap()
        })
        .collect();
    for ticket in &tickets {
        ticket.wait().unwrap();
    }
    let stats = service.stats();
    assert_eq!(stats.cache.compiled, 2, "qft and bv compile once each");
    assert_eq!(stats.cache.misses, 2);
    assert_eq!(stats.cache.hits, 4, "all repeats hit, across allocations");
    assert_eq!(stats.completed, 6);
    service.shutdown();
}

// ---------------------------------------------------------------- wire

struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl WireClient {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("loopback connect");
        let writer = stream.try_clone().expect("clone stream");
        WireClient {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> json::Value {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        json::parse(line.trim()).expect("response is JSON")
    }

    fn request(&mut self, line: &str) -> json::Value {
        self.send(line);
        self.recv()
    }
}

#[test]
fn tcp_loopback_smoke() {
    let service = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(2),
    );
    let server = wire::serve(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();

    // Submit a QFT over the wire with a pinned custom tree.
    let circuit = generators::qft(5);
    let submit = json::Value::Obj(vec![
        ("op".into(), json::str_val("submit")),
        ("client".into(), json::str_val("wire-smoke")),
        ("circuit".into(), wire::circuit_to_json(&circuit)),
        ("shots".into(), json::num_u64(24)),
        ("seed".into(), json::num_u64(7)),
        ("noise".into(), json::str_val("sycamore")),
        (
            "strategy".into(),
            json::parse(r#"{"kind":"custom","arities":[6,4]}"#).unwrap(),
        ),
    ])
    .to_json();

    let mut client = WireClient::connect(addr);
    let reply = client.request(&submit);
    assert_eq!(reply.get("ok").and_then(json::Value::as_bool), Some(true));
    let job = reply.get("job").and_then(json::Value::as_u64).unwrap();

    // Stream the outcomes (a second connection, as a real consumer would).
    let mut streamer = WireClient::connect(addr);
    streamer.send(&format!("{{\"op\":\"stream\",\"job\":{job}}}"));
    let mut streamed: Vec<u64> = Vec::new();
    loop {
        let line = streamer.recv();
        if line.get("done").is_some() {
            assert_eq!(
                line.get("status").and_then(json::Value::as_str),
                Some("done")
            );
            assert_eq!(
                line.get("total").and_then(json::Value::as_u64),
                Some(streamed.len() as u64)
            );
            break;
        }
        let chunk = line.get("chunk").and_then(json::Value::as_arr).unwrap();
        streamed.extend(chunk.iter().map(|v| v.as_u64().unwrap()));
    }
    assert_eq!(streamed.len(), 24, "6×4 tree leaves");

    // Poll reports completion.
    let poll = client.request(&format!("{{\"op\":\"poll\",\"job\":{job}}}"));
    assert_eq!(
        poll.get("status").and_then(json::Value::as_str),
        Some("done")
    );

    // The final result matches an identical in-process run bit for bit
    // (wire transport preserves the circuit exactly).
    let result = client.request(&format!("{{\"op\":\"result\",\"job\":{job}}}"));
    let reference = serial_reference_for_smoke(&circuit);
    assert_eq!(
        result.get("total").and_then(json::Value::as_u64),
        Some(reference.counts.total())
    );
    let mut wire_counts = Counts::new(5);
    for pair in result.get("counts").and_then(json::Value::as_arr).unwrap() {
        let pair = pair.as_arr().unwrap();
        let outcome = pair[0].as_u64().unwrap();
        for _ in 0..pair[1].as_u64().unwrap() {
            wire_counts.increment(outcome);
        }
    }
    assert_eq!(wire_counts, reference.counts);
    // Streamed outcomes equal the final histogram as a multiset.
    let mut streamed_counts = Counts::new(5);
    for o in streamed {
        streamed_counts.increment(o);
    }
    assert_eq!(streamed_counts, reference.counts);

    // Stats verb shows the lifecycle.
    let stats = client.request(r#"{"op":"stats"}"#);
    assert_eq!(
        stats.get("completed").and_then(json::Value::as_u64),
        Some(1)
    );
    assert!(stats.get("cache").is_some());

    // Error paths stay on-protocol.
    let unknown = client.request(r#"{"op":"poll","job":999999}"#);
    assert_eq!(
        unknown.get("ok").and_then(json::Value::as_bool),
        Some(false)
    );
    let garbage = client.request("not json at all");
    assert_eq!(
        garbage.get("ok").and_then(json::Value::as_bool),
        Some(false)
    );
    let cancel = client.request(&format!("{{\"op\":\"cancel\",\"job\":{job}}}"));
    assert_eq!(
        cancel.get("cancelled").and_then(json::Value::as_bool),
        Some(false),
        "already done ⇒ cancel is a no-op"
    );

    server.stop();
    service.shutdown();
}

fn serial_reference_for_smoke(circuit: &Circuit) -> RunResult {
    let engine = Engine::new(EngineConfig::default().parallelism(1));
    engine
        .submit(vec![JobSpec::new(circuit)
            .shots(24)
            .strategy(PlanStrategy::Custom {
                arities: vec![6, 4],
            })
            .seed(7)])
        .sequential()
        .run()
        .unwrap()
        .jobs
        .remove(0)
}

#[test]
fn wire_backpressure_reports_queue_full() {
    let service = Service::start(
        ServiceConfig::default()
            .parallelism(1)
            .max_concurrent_jobs(1)
            .queue_capacity(1),
    );
    service.pause_scheduling();
    let server = wire::serve(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    let mut client = WireClient::connect(server.addr());
    let submit = |client: &mut WireClient, seed: u64| {
        let circuit = generators::bv(5);
        let line = json::Value::Obj(vec![
            ("op".into(), json::str_val("submit")),
            ("circuit".into(), wire::circuit_to_json(&circuit)),
            ("shots".into(), json::num_u64(8)),
            ("seed".into(), json::num_u64(seed)),
        ])
        .to_json();
        client.request(&line)
    };
    let first = submit(&mut client, 1);
    assert_eq!(first.get("ok").and_then(json::Value::as_bool), Some(true));
    let refused = submit(&mut client, 2);
    assert_eq!(
        refused.get("ok").and_then(json::Value::as_bool),
        Some(false)
    );
    let msg = refused.get("error").and_then(json::Value::as_str).unwrap();
    assert!(msg.contains("queue full"), "{msg}");
    service.resume_scheduling();
    let job = first.get("job").and_then(json::Value::as_u64).unwrap();
    let result = client.request(&format!("{{\"op\":\"result\",\"job\":{job}}}"));
    assert_eq!(result.get("ok").and_then(json::Value::as_bool), Some(true));
    server.stop();
    service.shutdown();
}

// ------------------------------------------------------- backend placement

#[test]
fn service_routes_over_threshold_jobs_to_the_cluster_backend() {
    // The engine×cluster acceptance at the service layer: a job at or
    // above the policy's width threshold executes on the cluster-backed
    // engine (visible in the per-backend counters), with Counts
    // bit-identical to the same request on a single-node-only service.
    let wide_circuit = Arc::new(generators::qft(9));
    let narrow_circuit = Arc::new(generators::bv(6));
    let wide_request = |circuit: &Arc<Circuit>| {
        JobRequest::new(Arc::clone(circuit))
            .shots(24)
            .strategy(PlanStrategy::Custom {
                arities: vec![4, 3, 2],
            })
            .seed(17)
    };

    let single = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(2),
    );
    let reference = single
        .submit("ref", wide_request(&wide_circuit))
        .unwrap()
        .wait()
        .unwrap();
    let single_stats = single.stats();
    assert_eq!(single_stats.cluster_jobs, 0);
    assert_eq!(single_stats.single_node_jobs, 1);
    single.shutdown();

    let routed = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(2)
            .backend_policy(BackendPolicy::cluster_above(8, 4)),
    );
    let narrow = routed
        .submit(
            "a",
            JobRequest::new(Arc::clone(&narrow_circuit))
                .shots(8)
                .seed(1),
        )
        .unwrap();
    let wide = routed.submit("a", wide_request(&wide_circuit)).unwrap();
    narrow.wait().unwrap();
    let wide_result = wide.wait().unwrap();
    assert_eq!(
        wide_result.counts, reference.counts,
        "cluster placement must not change the histogram"
    );
    assert_eq!(wide_result.ops, reference.ops, "identical op accounting");
    let stats = routed.stats();
    assert_eq!(stats.cluster_jobs, 1, "wide job routed to the cluster");
    assert_eq!(stats.single_node_jobs, 1, "narrow job stayed single-node");
    routed.shutdown();
}

// ------------------------------------------------ wire hygiene + retention

#[test]
fn wire_forget_drops_finished_records_and_liveness_reclaims_abandoned_waits() {
    let service = Service::start(
        ServiceConfig::default()
            .parallelism(1)
            .max_concurrent_jobs(1),
    );
    service.pause_scheduling();
    let server = wire::serve(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();

    let circuit = generators::bv(5);
    let submit_line = json::Value::Obj(vec![
        ("op".into(), json::str_val("submit")),
        ("circuit".into(), wire::circuit_to_json(&circuit)),
        ("shots".into(), json::num_u64(8)),
        ("seed".into(), json::num_u64(5)),
    ])
    .to_json();
    let mut client = WireClient::connect(addr);
    let submitted = client.request(&submit_line);
    let job = submitted.get("job").and_then(json::Value::as_u64).unwrap();

    // Abandon a connection mid-`result` on a job that cannot finish
    // (scheduling is paused): the handler's liveness poll must reclaim
    // the thread instead of parking it until shutdown.
    let mut abandoned = WireClient::connect(addr);
    abandoned.send(&format!("{{\"op\":\"result\",\"job\":{job}}}"));
    drop(abandoned);
    // Give the poll interval a chance to fire and observe the hangup.
    std::thread::sleep(std::time::Duration::from_millis(600));

    // Live jobs are never forgotten.
    let refused = client.request(&format!("{{\"op\":\"forget\",\"job\":{job}}}"));
    assert_eq!(
        refused.get("forgotten").and_then(json::Value::as_bool),
        Some(false)
    );

    service.resume_scheduling();
    let result = client.request(&format!("{{\"op\":\"result\",\"job\":{job}}}"));
    assert_eq!(result.get("ok").and_then(json::Value::as_bool), Some(true));

    // Finished ⇒ forget drops the record; later lookups see unknown job.
    let stats = client.request("{\"op\":\"stats\"}");
    assert_eq!(
        stats.get("retained_jobs").and_then(json::Value::as_u64),
        Some(1)
    );
    let forgotten = client.request(&format!("{{\"op\":\"forget\",\"job\":{job}}}"));
    assert_eq!(
        forgotten.get("forgotten").and_then(json::Value::as_bool),
        Some(true)
    );
    let unknown = client.request(&format!("{{\"op\":\"poll\",\"job\":{job}}}"));
    assert_eq!(
        unknown.get("ok").and_then(json::Value::as_bool),
        Some(false)
    );
    // A forgotten (or never-existing) id errors like every other job verb
    // — forgotten:false is reserved for "still live, cancel first".
    let gone = client.request(&format!("{{\"op\":\"forget\",\"job\":{job}}}"));
    assert_eq!(gone.get("ok").and_then(json::Value::as_bool), Some(false));
    let msg = gone.get("error").and_then(json::Value::as_str).unwrap();
    assert!(msg.contains("unknown job"), "{msg}");
    let stats = client.request("{\"op\":\"stats\"}");
    assert_eq!(
        stats.get("retained_jobs").and_then(json::Value::as_u64),
        Some(0)
    );
    assert_eq!(
        stats.get("forgotten").and_then(json::Value::as_u64),
        Some(1)
    );

    server.stop();
    service.shutdown();
}

#[test]
fn wire_metrics_histograms_match_completed_jobs() {
    let service = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(2),
    );
    let server = wire::serve(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();

    // Three streaming submissions over the wire, fully drained.
    let circuit = generators::qft(5);
    let jobs = 3u64;
    let mut client = WireClient::connect(addr);
    for seed in 0..jobs {
        let submit = json::Value::Obj(vec![
            ("op".into(), json::str_val("submit")),
            ("client".into(), json::str_val("metrics-test")),
            ("circuit".into(), wire::circuit_to_json(&circuit)),
            ("shots".into(), json::num_u64(24)),
            ("seed".into(), json::num_u64(seed)),
            (
                "strategy".into(),
                json::parse(r#"{"kind":"custom","arities":[6,4]}"#).unwrap(),
            ),
        ])
        .to_json();
        let reply = client.request(&submit);
        let job = reply.get("job").and_then(json::Value::as_u64).unwrap();
        let mut streamer = WireClient::connect(addr);
        streamer.send(&format!("{{\"op\":\"stream\",\"job\":{job}}}"));
        loop {
            if streamer.recv().get("done").is_some() {
                break;
            }
        }
    }

    // Completion notifies the streamer slightly before the executor's
    // hook drops the in-flight gauge — wait for the drain.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while service.stats().running_now > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // The structured metrics verb: each stage histogram counted every
    // completed job exactly once.
    let metrics = client.request(r#"{"op":"metrics","events":true}"#);
    assert_eq!(metrics.get("ok").and_then(json::Value::as_bool), Some(true));
    let histograms = metrics
        .get("histograms")
        .and_then(json::Value::as_arr)
        .unwrap();
    let stage_count = |stage: &str| {
        histograms
            .iter()
            .find(|h| {
                h.get("name").and_then(json::Value::as_str) == Some("tqsim_job_stage_ns")
                    && h.get("labels")
                        .and_then(|l| l.get("stage"))
                        .and_then(json::Value::as_str)
                        == Some(stage)
            })
            .unwrap_or_else(|| panic!("stage {stage} missing"))
            .get("count")
            .and_then(json::Value::as_f64)
            .unwrap() as u64
    };
    for stage in ["queue_wait", "compile", "execute", "stream", "e2e"] {
        assert_eq!(stage_count(stage), jobs, "stage {stage}");
    }
    let find_scalar = |section: &str, name: &str| {
        metrics
            .get(section)
            .and_then(json::Value::as_arr)
            .unwrap()
            .iter()
            .find(|m| m.get("name").and_then(json::Value::as_str) == Some(name))
            .and_then(|m| m.get("value"))
            .and_then(json::Value::as_f64)
    };
    assert_eq!(
        find_scalar("counters", "tqsim_jobs_completed_total"),
        Some(jobs as f64)
    );
    assert_eq!(
        find_scalar("counters", "tqsim_outcomes_streamed_total"),
        Some((jobs * 24) as f64),
        "every shot of every job was streamed"
    );
    assert!(find_scalar("counters", "tqsim_chunks_streamed_total").unwrap_or(0.0) > 0.0);
    assert!(find_scalar("counters", "tqsim_ops_total").unwrap_or(0.0) > 0.0);
    assert_eq!(find_scalar("gauges", "tqsim_queue_depth"), Some(0.0));
    assert!(metrics
        .get("uptime_secs")
        .and_then(json::Value::as_f64)
        .is_some());
    let events = metrics.get("events").and_then(json::Value::as_arr).unwrap();
    assert!(events
        .iter()
        .any(|e| e.get("stage").and_then(json::Value::as_str) == Some("done")));

    // The Prometheus exposition carries the same totals.
    let text_reply = client.request(r#"{"op":"metrics","format":"text"}"#);
    let text = text_reply
        .get("text")
        .and_then(json::Value::as_str)
        .unwrap();
    assert!(text.contains("# TYPE tqsim_job_stage_ns histogram"));
    assert!(text.contains(&format!("tqsim_jobs_completed_total {jobs}")));

    // Unknown formats are refused on-protocol.
    let bad = client.request(r#"{"op":"metrics","format":"xml"}"#);
    assert_eq!(bad.get("ok").and_then(json::Value::as_bool), Some(false));

    server.stop();
    service.shutdown();
}
