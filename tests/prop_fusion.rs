//! Property tests of the compile-once/replay-many fusion layer: random
//! circuits under ideal and sycamore noise must produce **bit-identical
//! `Counts`** fused vs. unfused (the RNG streams are identical by
//! construction), across the serial executor and the engine at parallelism
//! 1..4, and replayed amplitudes must match per-gate dispatch to
//! floating-point-reordering tolerance.

use proptest::prelude::*;
use tqsim::{ExecOptions, Strategy as PlanStrategy, TreeExecutor};
use tqsim_circuit::{Circuit, Gate, GateKind};
use tqsim_engine::{Engine, EngineConfig, JobSpec};
use tqsim_noise::NoiseModel;
use tqsim_statevec::{OpCounts, StateVector};

/// Random gates drawn from the full fusible + passthrough catalogue.
fn arb_gate(n: u16) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let angle = -6.3f64..6.3;
    prop_oneof![
        (q.clone(), 0usize..10).prop_map(move |(q, k)| {
            let kind = [
                GateKind::X,
                GateKind::Y,
                GateKind::Z,
                GateKind::H,
                GateKind::S,
                GateKind::T,
                GateKind::Tdg,
                GateKind::Sx,
                GateKind::Sw,
                GateKind::Id,
            ][k];
            Gate::new(kind, &[q])
        }),
        (q.clone(), angle.clone(), 0usize..4).prop_map(move |(q, t, k)| {
            let kind = [
                GateKind::Rx(t),
                GateKind::Rz(t),
                GateKind::Phase(t),
                GateKind::Ry(t),
            ][k];
            Gate::new(kind, &[q])
        }),
        (q.clone(), q.clone(), angle, 0usize..6).prop_filter_map(
            "distinct qubits",
            move |(a, b, t, k)| {
                if a == b {
                    return None;
                }
                let kind = [
                    GateKind::Cx,
                    GateKind::Cz,
                    GateKind::CPhase(t),
                    GateKind::Swap,
                    GateKind::Rzz(t),
                    GateKind::FSim(t, t / 2.0),
                ][k];
                Some(Gate::new(kind, &[a, b]))
            }
        ),
        (q.clone(), q.clone(), q).prop_filter_map("distinct qubits", move |(a, b, c)| {
            if a == b || b == c || a == c {
                return None;
            }
            Some(Gate::new(GateKind::Ccx, &[a, b, c]))
        }),
    ]
}

fn arb_circuit(n: u16, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(n), 2..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(*g.kind(), g.qubits());
        }
        c
    })
}

fn noise_for(idx: usize) -> NoiseModel {
    if idx == 0 {
        NoiseModel::ideal()
    } else {
        NoiseModel::sycamore()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn replay_matches_per_gate_amplitudes(circuit in arb_circuit(5, 30)) {
        // Ideal-model plans (no noise points): replay vs. apply_circuit.
        let compiled = NoiseModel::ideal().compile(&circuit);
        let mut fused = StateVector::zero(5);
        let mut ops = OpCounts::new();
        compiled.replay_ideal(&mut fused, &mut ops);
        let mut reference = StateVector::zero(5);
        reference.apply_circuit(&circuit);
        for (i, (a, b)) in fused.amplitudes().iter().zip(reference.amplitudes()).enumerate() {
            prop_assert!((a - b).norm() < 1e-11, "amp {i}: {a:?} vs {b:?}");
        }
        prop_assert!(ops.amp_passes <= ops.total_gates());
    }

    #[test]
    fn serial_fused_counts_are_bit_identical(
        circuit in arb_circuit(5, 30),
        noise_idx in 0usize..2,
        seed in 0u64..1000,
    ) {
        let noise = noise_for(noise_idx);
        let partition = PlanStrategy::Custom { arities: vec![4, 3] }
            .plan(&circuit, &noise, 12)
            .unwrap();
        let exec = TreeExecutor::new(&circuit, &noise, partition).unwrap();
        let fused = exec.run_with_options(seed, ExecOptions::default());
        let unfused = exec.run_with_options(
            seed,
            ExecOptions { fusion: false, ..ExecOptions::default() },
        );
        prop_assert_eq!(&fused.counts, &unfused.counts);
        prop_assert_eq!(fused.ops.total_gates(), unfused.ops.total_gates());
        prop_assert_eq!(fused.ops.noise_ops, unfused.ops.noise_ops);
        prop_assert_eq!(fused.ops.samples, unfused.ops.samples);
        prop_assert!(fused.ops.amp_passes <= unfused.ops.amp_passes);
    }

    #[test]
    fn engine_fused_counts_are_bit_identical_at_any_parallelism(
        circuit in arb_circuit(5, 24),
        noise_idx in 0usize..2,
        seed in 0u64..1000,
    ) {
        let noise = noise_for(noise_idx);
        let run = |workers: usize, fusion: bool| {
            let engine = Engine::new(EngineConfig::default().parallelism(workers));
            engine
                .submit(vec![JobSpec::new(&circuit)
                    .noise(noise.clone())
                    .shots(12)
                    .strategy(PlanStrategy::Custom { arities: vec![4, 3] })
                    .seed(seed)
                    .fusion(fusion)])
                .run()
                .unwrap()
                .jobs
                .remove(0)
        };
        let reference = run(1, false);
        for workers in 1..=4usize {
            let fused = run(workers, true);
            prop_assert_eq!(&fused.counts, &reference.counts, "workers = {}", workers);
            prop_assert_eq!(fused.ops.total_gates(), reference.ops.total_gates());
            prop_assert_eq!(fused.ops.noise_ops, reference.ops.noise_ops);
        }
    }
}
