//! Chaos integration suite: deterministic failpoints injected into the
//! full service stack (TCP wire front-end → scheduler → engine → cluster)
//! must be contained to the faulted job, retried to bit-identical
//! `Counts`, degraded across backends, and accounted exactly — while
//! every non-faulted job completes untouched.
//!
//! The failpoint registry is process-global, so every test that arms a
//! site serializes on one gate and resets the registry on entry. The
//! `chaos_matrix` test at the bottom is the CI entry point: gated on
//! `TQSIM_CHAOS_MODE`, it runs a fixed-seed scenario per mode and writes
//! a `CHAOS_<mode>.json` summary artifact.

use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;
use tqsim::{Counts, Strategy as PlanStrategy};
use tqsim_circuit::generators;
use tqsim_faults::FaultConfig;
use tqsim_service::{
    json, wire, BackendPolicy, JobError, JobRequest, RetryPolicy, Service, ServiceConfig,
};

// ------------------------------------------------------------- harness

/// Serialize fault-arming tests (the registry is process-global) and
/// guarantee a clean registry on entry.
fn chaos_gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    let gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    tqsim_faults::reset_all();
    quiet_injected_panics();
    gate
}

/// Injected panics are expected output here; keep the default hook from
/// spamming stderr with backtraces for them while leaving every other
/// panic loud. Installed once, process-wide.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|msg| msg.contains("injected fault at failpoint"))
                // Amplitude-pool workers panic with the FaultError itself.
                || info.payload().is::<tqsim_faults::FaultError>();
            if !injected {
                previous(info);
            }
        }));
    });
}

/// RAII failpoint reset: the registry is clean even when an assert fails.
struct ResetOnDrop;

impl Drop for ResetOnDrop {
    fn drop(&mut self) {
        tqsim_faults::reset_all();
    }
}

fn request(circuit: &Arc<tqsim_circuit::Circuit>, seed: u64) -> JobRequest {
    JobRequest::new(Arc::clone(circuit))
        .shots(12)
        .strategy(PlanStrategy::Custom {
            arities: vec![4, 3],
        })
        .seed(seed)
}

/// Fault-free reference counts for one request. Only sites the reference
/// workload never reaches (or spent one-shot triggers) may still be
/// armed; callers arm `Always` faults after taking their references.
fn reference_counts(circuit: &Arc<tqsim_circuit::Circuit>, seed: u64) -> Counts {
    let service = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(1),
    );
    let counts = service
        .submit("reference", request(circuit, seed))
        .unwrap()
        .wait()
        .unwrap()
        .counts;
    service.shutdown();
    counts
}

/// Every slot and gauge must be back to idle once the work drains. A
/// ticket wait wakes on the terminal status transition, a beat before the
/// completion hook releases the scheduler slot — poll briefly first.
fn assert_quiescent(service: &Service) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = service.stats();
        if stats.running_now == 0 && stats.queued_now == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slots failed to drain: running={}, queued={}",
            stats.running_now,
            stats.queued_now
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    if let Some(snap) = service.metrics() {
        for gauge in &snap.gauges {
            if gauge.name == "tqsim_jobs_inflight" {
                assert_eq!(gauge.value, 0, "in-flight gauge {:?} drained", gauge.labels);
            }
        }
    }
}

fn counter_value(service: &Service, name: &str) -> u64 {
    service
        .metrics()
        .expect("observability on")
        .counters
        .iter()
        .filter(|c| c.name == name)
        .map(|c| c.value)
        .sum()
}

struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl WireClient {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("loopback connect");
        let writer = stream.try_clone().expect("clone stream");
        WireClient {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn request(&mut self, line: &str) -> json::Value {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
        self.writer.flush().expect("flush");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        json::parse(line.trim()).expect("response is JSON")
    }
}

fn submit_line(circuit: &tqsim_circuit::Circuit, seed: u64) -> String {
    json::Value::Obj(vec![
        ("op".into(), json::str_val("submit")),
        ("circuit".into(), wire::circuit_to_json(circuit)),
        ("shots".into(), json::num_u64(12)),
        (
            "strategy".into(),
            json::Value::Obj(vec![
                ("kind".into(), json::str_val("custom")),
                (
                    "arities".into(),
                    json::Value::Arr(vec![json::num_u64(4), json::num_u64(3)]),
                ),
            ]),
        ),
        ("seed".into(), json::num_u64(seed)),
    ])
    .to_json()
}

// ------------------------------------------------- panic containment

/// A worker panic injected under concurrent TCP clients fails exactly the
/// job it hit — with a structured code — while every other client's job
/// completes with counts bit-identical to a fault-free service.
#[test]
fn injected_panic_fails_one_job_while_concurrent_tcp_clients_complete() {
    let _gate = chaos_gate();
    let _reset = ResetOnDrop;
    let circuit = Arc::new(generators::qft(5));
    let seeds: Vec<u64> = (10..14).collect();
    let references: Vec<Counts> = seeds
        .iter()
        .map(|&s| reference_counts(&circuit, s))
        .collect();

    let service = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(2)
            .observability(true),
    );
    let server = wire::serve(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    // Exactly one node task — of whichever job gets there first — panics.
    tqsim_faults::configure("engine.node_task", FaultConfig::panic().nth(1));

    // (ok, error code, counts rows) per client.
    type Outcome = (bool, Option<String>, Vec<(u64, u64)>);
    let outcomes: Vec<Outcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let circuit = Arc::clone(&circuit);
                let addr = server.addr();
                scope.spawn(move || {
                    let mut client = WireClient::connect(addr);
                    let submitted = client.request(&submit_line(&circuit, seed));
                    let job = submitted
                        .get("job")
                        .and_then(json::Value::as_u64)
                        .expect("admitted");
                    let result = client.request(&format!("{{\"op\":\"result\",\"job\":{job}}}"));
                    let ok = result.get("ok").and_then(json::Value::as_bool) == Some(true);
                    let code = result
                        .get("code")
                        .and_then(json::Value::as_str)
                        .map(str::to_string);
                    let counts: Vec<(u64, u64)> = result
                        .get("counts")
                        .and_then(json::Value::as_arr)
                        .map(|rows| {
                            rows.iter()
                                .map(|row| {
                                    let row = row.as_arr().expect("count row");
                                    (row[0].as_u64().unwrap(), row[1].as_u64().unwrap())
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    (ok, code, counts)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let failed: Vec<_> = outcomes.iter().filter(|(ok, _, _)| !ok).collect();
    assert_eq!(failed.len(), 1, "exactly one job absorbs the panic");
    assert_eq!(
        failed[0].1.as_deref(),
        Some("job_aborted"),
        "structured abort code on the wire"
    );
    for ((ok, _, counts), reference) in outcomes.iter().zip(&references) {
        if *ok {
            let mut expected: Vec<(u64, u64)> = reference.iter().collect();
            expected.sort_unstable();
            assert_eq!(counts, &expected, "survivor counts are bit-identical");
        }
    }
    let stats = service.stats();
    assert_eq!(stats.aborted, 1, "one job aborted");
    assert_eq!(stats.completed, 3, "the rest completed");
    assert_eq!(
        tqsim_faults::fired("engine.node_task"),
        1,
        "the failpoint fired exactly once"
    );
    assert_eq!(
        counter_value(&service, "tqsim_jobs_aborted_total"),
        1,
        "metrics mirror agrees with the injected fault count"
    );
    assert_quiescent(&service);

    // The service survives: a post-fault job on the same stack completes.
    let after = service
        .submit("after", request(&circuit, 99))
        .unwrap()
        .wait()
        .expect("service healthy after contained panic");
    assert_eq!(after.counts, reference_counts(&circuit, 99));
    server.stop();
    service.shutdown();
}

/// A panic injected inside an **amplitude-pool worker** (the `par.worker`
/// failpoint in the statevec kernels, underneath the engine's node tasks)
/// aborts only the job whose sweep it hit: the shared amplitude pool and
/// the engine worker pool both stay healthy, and a post-fault job on the
/// same service returns bit-identical counts.
#[test]
fn amplitude_worker_panic_aborts_job_and_leaves_pool_healthy() {
    let _gate = chaos_gate();
    let _reset = ResetOnDrop;
    // Push the kernels onto the amplitude pool even at 5-qubit state
    // sizes, so the failpoint actually runs inside pool tasks; restore
    // the production threshold on exit.
    struct ParMinLenGuard;
    impl Drop for ParMinLenGuard {
        fn drop(&mut self) {
            tqsim_statevec::kernels::set_par_min_len(tqsim_statevec::kernels::DEFAULT_PAR_MIN_LEN);
        }
    }
    let _min_len = ParMinLenGuard;
    tqsim_statevec::kernels::set_par_min_len(1);

    let circuit = Arc::new(generators::qft(5));
    let reference = reference_counts(&circuit, 7);
    let service = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(1)
            .observability(true),
    );
    tqsim_faults::configure("par.worker", FaultConfig::panic().nth(1));
    let err = service
        .submit("victim", request(&circuit, 7))
        .unwrap()
        .wait()
        .expect_err("amplitude-pool panic aborts the job");
    assert_eq!(err.code(), "job_aborted");
    assert_eq!(
        tqsim_faults::fired("par.worker"),
        1,
        "the amp-pool failpoint fired exactly once"
    );

    // The amplitude pool survived the contained panic: the same service
    // keeps doing parallel sweeps and the retried seed is bit-identical.
    tqsim_faults::reset_all();
    let tasks_before = rayon::pool_stats().tasks;
    let after = service
        .submit("after", request(&circuit, 7))
        .unwrap()
        .wait()
        .expect("pool healthy after contained amp-worker panic");
    assert_eq!(after.counts, reference, "post-fault counts bit-identical");
    assert!(
        rayon::pool_stats().tasks > tasks_before,
        "the post-fault job really ran on the amplitude pool"
    );
    let stats = service.stats();
    assert_eq!(stats.aborted, 1);
    assert_eq!(stats.completed, 1);
    assert_quiescent(&service);
    service.shutdown();
}

// ------------------------------------------------ retry determinism

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The acceptance property: a job that succeeds after N injected
    /// transient faults returns `Counts` bit-identical to a zero-fault
    /// run with the same seed.
    ///
    /// `first:N` makes the N failed attempts deterministic: the root node
    /// task is each attempt's first (and, panicking before it spawns
    /// children, only) failpoint evaluation, so attempts 1..=N die
    /// instantly and attempt N+1 runs clean.
    #[test]
    fn retried_jobs_are_bit_identical_to_fault_free_runs(
        seed in 0u64..1000,
        faults in 1u64..4,
    ) {
        let _gate = chaos_gate();
        let _reset = ResetOnDrop;
        let circuit = Arc::new(generators::qft(5));
        // Single-root tree (arities [1, 12]): each attempt's first node
        // task is the lone root, which panics before spawning children —
        // so each failed attempt consumes exactly one trigger evaluation.
        let single_root = |seed: u64| {
            JobRequest::new(Arc::clone(&circuit))
                .shots(12)
                .strategy(PlanStrategy::Custom { arities: vec![1, 12] })
                .seed(seed)
        };
        let clean = Service::start(
            ServiceConfig::default().parallelism(2).max_concurrent_jobs(1),
        );
        let reference = clean
            .submit("reference", single_root(seed))
            .unwrap()
            .wait()
            .unwrap()
            .counts;
        clean.shutdown();

        let service = Service::start(
            ServiceConfig::default().parallelism(2).max_concurrent_jobs(1),
        );
        tqsim_faults::configure("engine.node_task", FaultConfig::panic().first(faults));
        let result = service
            .submit(
                "retrying",
                single_root(seed).retry(
                    RetryPolicy::attempts(faults as u32 + 1)
                        .initial_backoff(Duration::from_millis(1)),
                ),
            )
            .unwrap()
            .wait()
            .expect("job succeeds within the retry budget");
        prop_assert_eq!(&result.counts, &reference, "retried counts bit-identical");
        prop_assert_eq!(tqsim_faults::fired("engine.node_task"), faults);
        let stats = service.stats();
        prop_assert_eq!(stats.completed, 1);
        prop_assert_eq!(stats.retried, faults, "one retry per injected fault");
        prop_assert_eq!(stats.aborted, 0, "no terminal abort");
        service.shutdown();
    }
}

/// Same property on the cluster backend: a transient exchange fault is
/// retried in place and the retried counts match the clean cluster run.
#[test]
fn cluster_exchange_fault_retries_to_bit_identical_counts() {
    let _gate = chaos_gate();
    let _reset = ResetOnDrop;
    let circuit = Arc::new(generators::qft(9));
    let cluster_config = || {
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(1)
            .backend_policy(BackendPolicy::cluster_above(8, 4))
    };
    let clean = Service::start(cluster_config());
    let reference = clean
        .submit("reference", request(&circuit, 21))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(
        clean.stats().cluster_jobs,
        1,
        "reference ran on the cluster"
    );
    clean.shutdown();

    let service = Service::start(cluster_config());
    tqsim_faults::configure("cluster.exchange", FaultConfig::error().nth(1));
    let result = service
        .submit(
            "retrying",
            request(&circuit, 21)
                .retry(RetryPolicy::attempts(2).initial_backoff(Duration::from_millis(1))),
        )
        .unwrap()
        .wait()
        .expect("transient cluster fault retried");
    assert_eq!(result.counts, reference.counts, "retried cluster counts");
    let stats = service.stats();
    assert_eq!(stats.cluster_jobs, 1, "stayed on the cluster");
    assert_eq!(stats.retried, 1);
    assert_eq!(stats.degraded, 0, "retry succeeded before degradation");
    service.shutdown();
}

// ---------------------------------------------------------- deadlines

/// A job held past its deadline by a slow-node fault fails with
/// `DeadlineExceeded`, frees its slot, and leaves the service healthy.
#[test]
fn deadline_exceeded_fails_the_slow_job_and_frees_its_slot() {
    let _gate = chaos_gate();
    let _reset = ResetOnDrop;
    let circuit = Arc::new(generators::bv(5));
    let service = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(1),
    );
    // Every node task dawdles; the 40ms deadline fires long before the
    // job can finish.
    tqsim_faults::configure(
        "engine.node_task",
        FaultConfig::delay(Duration::from_millis(60)),
    );
    let slow = service
        .submit(
            "slow",
            request(&circuit, 3).deadline(Duration::from_millis(40)),
        )
        .unwrap();
    let err = slow
        .wait()
        .expect_err("watchdog fails the job, not the service");
    assert_eq!(err, JobError::DeadlineExceeded);
    assert_eq!(err.code(), "deadline_exceeded");
    let stats = service.stats();
    assert_eq!(stats.timed_out, 1);
    assert_eq!(stats.completed, 0);

    // The slot drains once the slow engine run finishes; a fresh job then
    // runs to completion with the fault disarmed.
    tqsim_faults::reset_all();
    let next = service
        .submit("next", request(&circuit, 4))
        .unwrap()
        .wait()
        .expect("slot freed after deadline abort");
    assert_eq!(next.counts, reference_counts(&circuit, 4));
    assert_eq!(service.stats().timed_out, 1, "deadline counted once");
    service.shutdown();
}

// ------------------------------------------------------ compile faults

/// A planning fault fails only the requesting job — the plan cache is not
/// poisoned, so resubmitting the identical circuit compiles and runs.
#[test]
fn compile_fault_fails_one_job_without_poisoning_the_plan_cache() {
    let _gate = chaos_gate();
    let _reset = ResetOnDrop;
    let circuit = Arc::new(generators::qft(5));
    let service = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(1),
    );
    tqsim_faults::configure("service.plan", FaultConfig::error().nth(1));
    let err = service
        .submit("victim", request(&circuit, 5))
        .unwrap()
        .wait()
        .expect_err("injected plan fault fails the job");
    match &err {
        JobError::Failed(msg) => assert!(msg.contains("service.plan"), "{msg}"),
        other => panic!("expected Failed, got {other:?}"),
    }
    assert_eq!(err.code(), "job_failed");

    // Identical request, no fault: plans cleanly (errors are never cached).
    let ok = service
        .submit("retry", request(&circuit, 5))
        .unwrap()
        .wait()
        .expect("plan cache not poisoned by the failed compile");
    assert_eq!(ok.counts, reference_counts(&circuit, 5));
    let stats = service.stats();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 1);
    service.shutdown();
}

// -------------------------------------------------- cluster degradation

/// Persistent cluster faults degrade the job to the single-node engine
/// (counts identical — same plan, same seed) when it fits there…
#[test]
fn persistent_cluster_fault_degrades_to_single_node() {
    let _gate = chaos_gate();
    let _reset = ResetOnDrop;
    let circuit = Arc::new(generators::qft(9));
    let reference = reference_counts(&circuit, 31);
    let service = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(1)
            .observability(true)
            .backend_policy(BackendPolicy::cluster_above(8, 4)),
    );
    // Every exchange fails: both cluster attempts die, then degradation
    // re-places the job on the single-node engine, which never exchanges.
    tqsim_faults::configure("cluster.exchange", FaultConfig::error());
    let result = service
        .submit(
            "degraded",
            request(&circuit, 31)
                .retry(RetryPolicy::attempts(2).initial_backoff(Duration::from_millis(1))),
        )
        .unwrap()
        .wait()
        .expect("degraded to single-node");
    assert_eq!(
        result.counts, reference,
        "degraded run is bit-identical — same plan, same seed"
    );
    let stats = service.stats();
    assert_eq!(stats.degraded, 1, "one cluster→single-node re-placement");
    assert_eq!(stats.retried, 1, "one same-backend retry first");
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cluster_jobs, 1, "placement counter: chose cluster");
    assert_eq!(counter_value(&service, "tqsim_jobs_degraded_total"), 1);
    assert_quiescent(&service);
    service.shutdown();
}

/// …and fail with a structured `BackendUnavailable` when the job is too
/// wide for the single-node cap.
#[test]
fn cluster_fault_on_a_too_wide_job_is_backend_unavailable() {
    let _gate = chaos_gate();
    let _reset = ResetOnDrop;
    let circuit = Arc::new(generators::qft(9));
    let service = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(1)
            .backend_policy(BackendPolicy::cluster_above(8, 4).single_node_up_to(7)),
    );
    tqsim_faults::configure("cluster.exchange", FaultConfig::error());
    let err = service
        .submit(
            "stranded",
            request(&circuit, 41)
                .retry(RetryPolicy::attempts(2).initial_backoff(Duration::from_millis(1))),
        )
        .unwrap()
        .wait()
        .expect_err("no backend left");
    assert_eq!(err.code(), "backend_unavailable");
    match &err {
        JobError::BackendUnavailable(msg) => {
            assert!(msg.contains("single-node cap"), "{msg}")
        }
        other => panic!("expected BackendUnavailable, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.degraded, 0, "nothing to degrade to");
    assert_eq!(stats.failed, 1, "BackendUnavailable counts as failed");
    service.shutdown();
}

// -------------------------------------------- multi-process transport

/// A transient `shard.transport` fault on the multi-process cluster
/// transport fails only that attempt: the retry replays on the *same*
/// worker processes (injected transport faults fire before any bytes
/// move, so the wire stays protocol-consistent) and returns bit-identical
/// counts.
#[test]
fn shard_transport_fault_is_retried_on_the_same_workers() {
    let _gate = chaos_gate();
    let _reset = ResetOnDrop;
    let circuit = Arc::new(generators::qft(9));
    let reference = reference_counts(&circuit, 23);
    let service = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(1)
            .backend_policy(BackendPolicy::cluster_above(8, 2).multi_process()),
    );
    tqsim_faults::configure("shard.transport", FaultConfig::panic().nth(1));
    let result = service
        .submit(
            "flaky-wire",
            request(&circuit, 23)
                .retry(RetryPolicy::attempts(2).initial_backoff(Duration::from_millis(1))),
        )
        .unwrap()
        .wait()
        .expect("retried on the same shard workers");
    assert_eq!(result.counts, reference, "same plan, same seed, same bits");
    assert_eq!(tqsim_faults::fired("shard.transport"), 1);
    let stats = service.stats();
    assert_eq!(stats.retried, 1, "one same-backend retry");
    assert_eq!(stats.degraded, 0, "the worker processes stayed healthy");
    assert_eq!(stats.cluster_jobs, 1);
    assert_quiescent(&service);
    service.shutdown();
}

/// A persistent multi-process transport failure exhausts the retry budget
/// and degrades the job onto the single-node engine — the full PR 7
/// ladder, now spanning a real process boundary.
#[test]
fn persistent_shard_transport_fault_degrades_to_single_node() {
    let _gate = chaos_gate();
    let _reset = ResetOnDrop;
    let circuit = Arc::new(generators::qft(9));
    let reference = reference_counts(&circuit, 29);
    let service = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(1)
            .backend_policy(BackendPolicy::cluster_above(8, 2).multi_process()),
    );
    tqsim_faults::configure("shard.transport", FaultConfig::panic());
    let result = service
        .submit(
            "dead-wire",
            request(&circuit, 29)
                .retry(RetryPolicy::attempts(2).initial_backoff(Duration::from_millis(1))),
        )
        .unwrap()
        .wait()
        .expect("degraded to single-node");
    assert_eq!(result.counts, reference, "degradation is bit-identical");
    let stats = service.stats();
    assert_eq!(stats.retried, 1, "one same-backend retry first");
    assert_eq!(
        stats.degraded, 1,
        "then one cluster→single-node re-placement"
    );
    assert_quiescent(&service);
    service.shutdown();
}

// ------------------------------------------- cross-boundary fusion seams

/// A panic injected at the `plan.boundary` failpoint — the cross-boundary
/// fused copy and fused sampling seams — aborts only the boundary-fused
/// job that hit it: a concurrently running eager job, whose plan never
/// crosses the seam, completes untouched. Re-armed under a retry budget,
/// the boundary job then succeeds with `Counts` bit-identical to a
/// fault-free boundary-fused run.
#[test]
fn boundary_fusion_fault_is_contained_and_retries_bit_identical() {
    let _gate = chaos_gate();
    let _reset = ResetOnDrop;
    let circuit = Arc::new(generators::qft(6));
    let wide = tqsim_service::FusionConfig {
        max_fuse_qubits: 4,
        boundary: true,
    };
    let boundary_request = |seed: u64| request(&circuit, seed).fusion_config(wide);

    // Fault-free references: one boundary-fused, one eager. The boundary
    // reference must really cross the seams it claims to exercise.
    let clean = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(1),
    );
    let reference = clean
        .submit("reference", boundary_request(17))
        .unwrap()
        .wait()
        .unwrap();
    assert!(
        reference.ops.copy_apply > 0 && reference.ops.sample_fused > 0,
        "boundary plan rides head windows on copies and tail windows on sampling"
    );
    let eager_reference = clean
        .submit("eager-reference", request(&circuit, 18))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(
        eager_reference.ops.copy_apply + eager_reference.ops.sample_fused,
        0,
        "the eager plan never crosses a boundary seam"
    );
    clean.shutdown();

    // Containment: the first seam crossing panics; only the boundary job
    // dies, the concurrent eager job is untouched.
    let service = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(2),
    );
    tqsim_faults::configure("plan.boundary", FaultConfig::panic().nth(1));
    let victim = service.submit("victim", boundary_request(17)).unwrap();
    let bystander = service.submit("bystander", request(&circuit, 18)).unwrap();
    let err = victim
        .wait()
        .expect_err("boundary-seam panic aborts the faulted job");
    assert_eq!(err.code(), "job_aborted");
    let unharmed = bystander.wait().expect("eager job never hits the seam");
    assert_eq!(unharmed.counts, eager_reference.counts);
    assert_eq!(tqsim_faults::fired("plan.boundary"), 1);

    // Retry determinism: re-armed as a one-shot, the failed attempt is
    // retried in place and lands bit-identical boundary-fused counts.
    tqsim_faults::configure("plan.boundary", FaultConfig::panic().nth(1));
    let retried = service
        .submit(
            "retried",
            boundary_request(17)
                .retry(RetryPolicy::attempts(2).initial_backoff(Duration::from_millis(1))),
        )
        .unwrap()
        .wait()
        .expect("second attempt runs clean");
    assert_eq!(
        retried.counts, reference.counts,
        "retried boundary counts bit-identical to the fault-free run"
    );
    assert_eq!(
        retried.ops, reference.ops,
        "the retry replayed the same boundary-fused plan"
    );
    let stats = service.stats();
    assert_eq!(stats.aborted, 1, "only the un-retried victim aborted");
    assert_eq!(stats.retried, 1, "one in-place retry");
    assert_eq!(stats.completed, 2, "bystander + retried job");
    assert_quiescent(&service);
    service.shutdown();
}

// ------------------------------------------------- exact accounting

/// Alternating faulted/clean jobs: every failure counter and metrics
/// mirror must match the injected fault count exactly — nothing lost,
/// nothing double-counted — and all gauges return to zero.
#[test]
fn failure_counters_match_injected_fault_counts_exactly() {
    let _gate = chaos_gate();
    let _reset = ResetOnDrop;
    let circuit = Arc::new(generators::bv(5));
    let service = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(1)
            .observability(true),
    );
    let mut injected = 0u64;
    let mut fired = 0u64;
    for i in 0..6u64 {
        let fault = i % 2 == 0;
        if fault {
            tqsim_faults::configure("engine.node_task", FaultConfig::panic().nth(1));
        }
        let outcome = service
            .submit("mixed", request(&circuit, 100 + i))
            .unwrap()
            .wait();
        if fault {
            injected += 1;
            fired += tqsim_faults::fired("engine.node_task");
            assert_eq!(
                outcome.expect_err("faulted job aborts").code(),
                "job_aborted"
            );
        } else {
            outcome.expect("clean job completes");
        }
    }
    assert_eq!(fired, injected, "each armed nth:1 fired exactly once");
    let stats = service.stats();
    assert_eq!(stats.aborted, injected, "aborted == injected faults");
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.failed, 0, "disjoint failure counters");
    assert_eq!(stats.timed_out, 0);
    assert_eq!(stats.cancelled, 0);
    assert_eq!(
        counter_value(&service, "tqsim_jobs_aborted_total"),
        injected
    );
    assert_eq!(counter_value(&service, "tqsim_jobs_completed_total"), 3);
    assert_quiescent(&service);
    service.shutdown();
}

// ---------------------------------------------------- CI chaos matrix

/// CI entry point: one fixed-seed scenario per `TQSIM_CHAOS_MODE`
/// (`panic`, `exchange`, `compile`, `slow`), writing a `CHAOS_<mode>.json`
/// summary next to the workspace manifest. A no-op without the env var,
/// so the default test run is unaffected.
#[test]
fn chaos_matrix() {
    let Ok(mode) = std::env::var("TQSIM_CHAOS_MODE") else {
        return;
    };
    let _gate = chaos_gate();
    let _reset = ResetOnDrop;
    let circuit = Arc::new(generators::qft(9));
    let reference = reference_counts(&circuit, 77);

    let service = Service::start(
        ServiceConfig::default()
            .parallelism(2)
            .max_concurrent_jobs(2)
            .observability(true)
            .backend_policy(BackendPolicy::cluster_above(8, 4)),
    );
    let (site, config) = match mode.as_str() {
        "panic" => ("engine.node_task", FaultConfig::panic().nth(1)),
        "exchange" => ("cluster.exchange", FaultConfig::error().nth(1)),
        "compile" => ("service.plan", FaultConfig::error().nth(1)),
        "slow" => (
            "engine.node_task",
            FaultConfig::delay(Duration::from_millis(2)).probability(0.2, 4242),
        ),
        other => panic!("unknown TQSIM_CHAOS_MODE {other:?}"),
    };
    tqsim_faults::configure(site, config);

    // Fixed-seed workload: every job carries a retry budget, so single
    // transient faults (panic/exchange) are absorbed; `compile` fails
    // exactly the first planned job; `slow` only stretches wall time.
    let tickets: Vec<_> = (0..4u64)
        .map(|i| {
            service
                .submit(
                    &format!("chaos-{i}"),
                    request(&circuit, 77)
                        .retry(RetryPolicy::attempts(3).initial_backoff(Duration::from_millis(1)))
                        .deadline(Duration::from_secs(60)),
                )
                .unwrap()
        })
        .collect();
    let mut completed = 0u64;
    let mut failed_codes: Vec<String> = Vec::new();
    for ticket in &tickets {
        match ticket.wait() {
            Ok(result) => {
                assert_eq!(result.counts, reference, "chaos survivor counts intact");
                completed += 1;
            }
            Err(err) => failed_codes.push(err.code().to_string()),
        }
    }
    match mode.as_str() {
        // Transient single faults are retried away entirely.
        "panic" | "exchange" | "slow" => assert_eq!(completed, 4, "{failed_codes:?}"),
        // The one faulted compile fails its job; the other three complete.
        "compile" => {
            assert_eq!(completed, 3);
            assert_eq!(failed_codes, ["job_failed"]);
        }
        _ => unreachable!(),
    }
    assert_quiescent(&service);
    let stats = service.stats();
    let summary = json::Value::Obj(vec![
        ("mode".into(), json::str_val(mode.clone())),
        ("site".into(), json::str_val(site)),
        ("jobs".into(), json::num_u64(4)),
        ("completed".into(), json::num_u64(completed)),
        ("failed".into(), json::num_u64(stats.failed)),
        ("aborted".into(), json::num_u64(stats.aborted)),
        ("retried".into(), json::num_u64(stats.retried)),
        ("timed_out".into(), json::num_u64(stats.timed_out)),
        ("degraded".into(), json::num_u64(stats.degraded)),
        ("fault_hits".into(), json::num_u64(tqsim_faults::hits(site))),
        (
            "fault_fired".into(),
            json::num_u64(tqsim_faults::fired(site)),
        ),
    ])
    .to_json();
    let path = format!("{}/CHAOS_{mode}.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, summary + "\n").expect("write chaos summary");
    service.shutdown();
}
