//! Cross-backend property tests of the generic plan-replay path: fused
//! replay on the distributed `DistributedStateVector` (2/4/8 nodes) must
//! yield `Counts` **bit-identical** to serial single-node `StateVector`
//! replay for the same seed — ideal and sycamore noise, single and
//! oversampled leaves — because both backends drive the one shared generic
//! driver (`tqsim::run_subcircuit`) and consume the RNG stream identically.

use proptest::prelude::*;
use tqsim::{ExecOptions, Strategy as PlanStrategy, TreeExecutor};
use tqsim_circuit::{Circuit, Gate, GateKind};
use tqsim_cluster::{run_distributed_with_options, InterconnectModel};
use tqsim_noise::NoiseModel;

/// Random gates over 7 qubits — wide enough that 8-node slicing (3 global
/// qubits) exercises the remap fallback alongside node-local fused kernels.
fn arb_gate(n: u16) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let angle = -6.3f64..6.3;
    prop_oneof![
        (q.clone(), 0usize..10).prop_map(move |(q, k)| {
            let kind = [
                GateKind::X,
                GateKind::Y,
                GateKind::Z,
                GateKind::H,
                GateKind::S,
                GateKind::T,
                GateKind::Tdg,
                GateKind::Sx,
                GateKind::Sw,
                GateKind::Id,
            ][k];
            Gate::new(kind, &[q])
        }),
        (q.clone(), angle.clone(), 0usize..4).prop_map(move |(q, t, k)| {
            let kind = [
                GateKind::Rx(t),
                GateKind::Rz(t),
                GateKind::Phase(t),
                GateKind::Ry(t),
            ][k];
            Gate::new(kind, &[q])
        }),
        (q.clone(), q.clone(), angle, 0usize..6).prop_filter_map(
            "distinct qubits",
            move |(a, b, t, k)| {
                if a == b {
                    return None;
                }
                let kind = [
                    GateKind::Cx,
                    GateKind::Cz,
                    GateKind::CPhase(t),
                    GateKind::Swap,
                    GateKind::Rzz(t),
                    GateKind::FSim(t, t / 2.0),
                ][k];
                Some(Gate::new(kind, &[a, b]))
            }
        ),
        (q.clone(), q.clone(), q).prop_filter_map("distinct qubits", move |(a, b, c)| {
            if a == b || b == c || a == c {
                return None;
            }
            Some(Gate::new(GateKind::Ccx, &[a, b, c]))
        }),
    ]
}

fn arb_circuit(n: u16, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(n), 2..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(*g.kind(), g.qubits());
        }
        c
    })
}

fn noise_for(idx: usize) -> NoiseModel {
    if idx == 0 {
        NoiseModel::ideal()
    } else {
        NoiseModel::sycamore()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn distributed_fused_replay_is_bit_identical_to_serial(
        circuit in arb_circuit(7, 24),
        noise_idx in 0usize..2,
        seed in 0u64..1000,
    ) {
        let noise = noise_for(noise_idx);
        let partition = PlanStrategy::Custom { arities: vec![3, 2] }
            .plan(&circuit, &noise, 6)
            .unwrap();
        let serial = TreeExecutor::new(&circuit, &noise, partition.clone())
            .unwrap()
            .run_with_options(seed, ExecOptions::default());
        let model = InterconnectModel::commodity_cluster();
        for nodes in [2usize, 4, 8] {
            let dist = run_distributed_with_options(
                &circuit, &noise, &partition, nodes, model, seed,
                ExecOptions::default(),
            )
            .unwrap();
            prop_assert_eq!(&dist.counts, &serial.counts, "{} nodes", nodes);
            // One state-agnostic fuser → identical sweep accounting.
            prop_assert_eq!(dist.ops.amp_passes, serial.ops.amp_passes);
            prop_assert_eq!(dist.ops.noise_ops, serial.ops.noise_ops);
            prop_assert_eq!(dist.ops.total_gates(), serial.ops.total_gates());
            prop_assert_eq!(dist.ops.samples, serial.ops.samples);
        }
    }

    #[test]
    fn oversampled_distributed_leaves_stay_deterministic(
        circuit in arb_circuit(7, 18),
        seed in 0u64..1000,
        leaf_samples in 2u32..5,
    ) {
        // `DistributedStateVector::sample_many` must consume the uniforms
        // draw-for-draw like `StateVector::sample_many`.
        let noise = NoiseModel::sycamore();
        let partition = PlanStrategy::Custom { arities: vec![3, 2] }
            .plan(&circuit, &noise, 6)
            .unwrap();
        let options = ExecOptions { leaf_samples, ..ExecOptions::default() };
        let serial = TreeExecutor::new(&circuit, &noise, partition.clone())
            .unwrap()
            .run_with_options(seed, options);
        let model = InterconnectModel::commodity_cluster();
        let dist = run_distributed_with_options(
            &circuit, &noise, &partition, 4, model, seed, options,
        )
        .unwrap();
        prop_assert_eq!(&dist.counts, &serial.counts);
        prop_assert_eq!(dist.ops.samples, serial.ops.samples);
    }
}
