//! Cross-crate accuracy integration tests: TQSim vs the flat baseline vs
//! the exact density matrix, across noise models — the Fig. 14/15/16
//! claims at test scale.

use tqsim::{metrics, Strategy, Tqsim};
use tqsim_circuit::generators;
use tqsim_densmat::DensityMatrix;
use tqsim_noise::{fig16_models, NoiseModel};

/// Normalized fidelity of a run's histogram against the ideal distribution.
fn nf(circuit: &tqsim_circuit::Circuit, counts: &tqsim::Counts) -> f64 {
    let ideal = metrics::ideal_distribution(circuit);
    metrics::normalized_fidelity(&ideal, &counts.to_distribution())
}

#[test]
fn tqsim_matches_baseline_fidelity_across_classes() {
    let noise = NoiseModel::sycamore();
    let shots = 3_000;
    for circuit in [
        generators::bv(8),
        generators::qft(8),
        generators::qpe_unrolled(3, 1.0 / 3.0),
        generators::qsc(8, 38, 1),
    ] {
        let base = Tqsim::new(&circuit)
            .noise(noise.clone())
            .shots(shots)
            .strategy(Strategy::Baseline)
            .seed(11)
            .run()
            .unwrap();
        let tree = Tqsim::new(&circuit)
            .noise(noise.clone())
            .shots(shots)
            .strategy(Strategy::Custom {
                arities: vec![300, 2, 5],
            })
            .seed(12)
            .run()
            .unwrap();
        let (fb, ft) = (nf(&circuit, &base.counts), nf(&circuit, &tree.counts));
        assert!(
            (fb - ft).abs() < 0.08,
            "{}-gate circuit: baseline F={fb:.3}, tqsim F={ft:.3}",
            circuit.len()
        );
    }
}

#[test]
fn tqsim_matches_exact_density_matrix() {
    // The §2.4.1 convergence argument, end to end: TQSim's histogram must
    // approach diag(ρ) of the exactly-evolved mixed state.
    let circuit = generators::bv(6);
    let noise = NoiseModel::depolarizing(0.01, 0.05);
    let dm = DensityMatrix::run_noisy(&circuit, &noise);
    let exact = dm.probabilities();
    let tree = Tqsim::new(&circuit)
        .noise(noise)
        .shots(8_000)
        .strategy(Strategy::Custom {
            arities: vec![500, 4, 4],
        })
        .seed(5)
        .run()
        .unwrap();
    let emp = tree.counts.to_distribution();
    let f = metrics::state_fidelity(&exact, &emp);
    assert!(f > 0.99, "fidelity to exact DM distribution = {f}");
}

#[test]
fn fidelity_gap_stays_small_under_every_noise_model() {
    // Fig. 16 at test scale: all nine channel combinations.
    let circuit = generators::qpe_unrolled(3, 1.0 / 3.0);
    let shots = 1_500;
    for model in fig16_models() {
        let base = Tqsim::new(&circuit)
            .noise(model.clone())
            .shots(shots)
            .strategy(Strategy::Baseline)
            .seed(21)
            .run()
            .unwrap();
        let tree = Tqsim::new(&circuit)
            .noise(model.clone())
            .shots(shots)
            .strategy(Strategy::Custom {
                arities: vec![150, 2, 5],
            })
            .seed(22)
            .run()
            .unwrap();
        let gap = (nf(&circuit, &base.counts) - nf(&circuit, &tree.counts)).abs();
        assert!(gap < 0.12, "model {}: fidelity gap {gap:.3}", model.name());
    }
}

#[test]
fn deeper_reuse_degrades_accuracy_monotonically_in_the_extreme() {
    // Fig. 17's extreme case: an A0-only tree (250-1-1) diverges from the
    // baseline far more than DCP's shape does.
    let circuit = generators::qpe(8, 1.0 / 3.0);
    let noise = NoiseModel::sycamore();
    let shots = 1_000;
    let f_ref = {
        let r = Tqsim::new(&circuit)
            .noise(noise.clone())
            .shots(shots)
            .strategy(Strategy::Baseline)
            .seed(31)
            .run()
            .unwrap();
        nf(&circuit, &r.counts)
    };
    let gap = |arities: Vec<u64>, seed: u64| {
        let r = Tqsim::new(&circuit)
            .noise(noise.clone())
            .shots(shots)
            .strategy(Strategy::Custom { arities })
            .seed(seed)
            .run()
            .unwrap();
        (nf(&circuit, &r.counts) - f_ref).abs()
    };
    // Average over several seeds to suppress sampling noise: the expected
    // difference between the two shapes is small at this shot budget, so a
    // handful of seeds is not enough to separate them reliably.
    let seeds = [41u64, 42, 43, 44, 45, 46, 47, 48];
    let n = seeds.len() as f64;
    let dcp: f64 = seeds.iter().map(|&s| gap(vec![250, 2, 2], s)).sum::<f64>() / n;
    let extreme: f64 = seeds.iter().map(|&s| gap(vec![250, 1, 1], s)).sum::<f64>() / n;
    assert!(
        extreme > dcp,
        "extreme tree should deviate more: dcp {dcp:.4} vs extreme {extreme:.4}"
    );
}
