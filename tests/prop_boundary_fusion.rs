//! Cross-boundary fusion and wide clusters are execution-plan changes,
//! never semantic ones: for every fusion cell in
//! window {2, 3, 4, 5} × boundary {off, on}, `Counts` must be
//! bit-identical to the window-2 eager reference — on the single-node
//! backend, the 4-node in-process cluster backend and the 2-shard
//! multi-process backend, under ideal and sycamore noise. Under the
//! ideal model boundary fusion must also never *increase* amplitude
//! passes, and within every cell the three backends must agree on the
//! full op accounting.

use proptest::prelude::*;
use std::sync::Arc;
use tqsim::Strategy as PlanStrategy;
use tqsim_circuit::{generators, Circuit, Gate, GateKind};
use tqsim_cluster::{ClusterBackend, InterconnectModel};
use tqsim_engine::{Engine, EngineConfig, FusionConfig, JobPlan, PlannedJob};
use tqsim_noise::NoiseModel;
use tqsim_shard::ShardBackend;

/// The full ablation grid: every window width × boundary fusion off/on.
const GRID: [(u8, bool); 8] = [
    (2, false),
    (2, true),
    (3, false),
    (3, true),
    (4, false),
    (4, true),
    (5, false),
    (5, true),
];

/// Random gates over `n` qubits, mixing 1q, rotation and 2q kinds so
/// compiled plans hold fused dense frames (up to `Mat32` at window 5)
/// alongside diagonal runs.
fn arb_gate(n: u16) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let angle = -6.3f64..6.3;
    prop_oneof![
        (q.clone(), 0usize..6).prop_map(move |(q, k)| {
            let kind = [
                GateKind::X,
                GateKind::H,
                GateKind::S,
                GateKind::T,
                GateKind::Sx,
                GateKind::Sw,
            ][k];
            Gate::new(kind, &[q])
        }),
        (q.clone(), angle.clone(), 0usize..4).prop_map(move |(q, t, k)| {
            let kind = [
                GateKind::Rx(t),
                GateKind::Rz(t),
                GateKind::Phase(t),
                GateKind::Ry(t),
            ][k];
            Gate::new(kind, &[q])
        }),
        (q.clone(), q, angle, 0usize..5).prop_filter_map("distinct qubits", move |(a, b, t, k)| {
            if a == b {
                return None;
            }
            let kind = [
                GateKind::Cx,
                GateKind::Cz,
                GateKind::CPhase(t),
                GateKind::Swap,
                GateKind::Rzz(t),
            ][k];
            Some(Gate::new(kind, &[a, b]))
        }),
    ]
}

fn arb_circuit(n: u16, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(n), 2..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(*g.kind(), g.qubits());
        }
        c
    })
}

fn noise_for(idx: usize) -> NoiseModel {
    if idx == 0 {
        NoiseModel::ideal()
    } else {
        NoiseModel::sycamore()
    }
}

/// Run every grid cell for one (circuit, noise, seed) triple on all three
/// backends and check the identity invariants against the window-2 eager
/// reference. 8 qubits keeps ≥ 5 node-local qubits on the 4-node cluster
/// (6) and the 2-shard backend (7), so window-5 frames stay legal
/// everywhere. `ideal` says whether `noise` is the ideal model — the
/// pass-count invariant is only exact there (see below).
fn check_grid(circuit: &Circuit, noise: &NoiseModel, ideal: bool, seed: u64, shard: &ShardBackend) {
    let strategy = PlanStrategy::Custom {
        arities: vec![3, 2],
    };
    let mut reference = None;
    let mut eager_passes = [0u64; GRID.len()];
    for (i, &(window, boundary)) in GRID.iter().enumerate() {
        let plan = Arc::new(
            JobPlan::plan_with(
                circuit,
                noise,
                6,
                &strategy,
                FusionConfig {
                    max_fuse_qubits: window,
                    boundary,
                },
            )
            .unwrap(),
        );
        // Per-cell reference: the serial single-node run of this plan.
        let serial = Engine::new(EngineConfig::default().parallelism(1))
            .run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(seed));
        match &reference {
            None => reference = Some(serial.counts.clone()),
            Some(base) => assert_eq!(
                &serial.counts, base,
                "w={} boundary={}: fusion cells must not move the histogram",
                window, boundary
            ),
        }
        eager_passes[i] = serial.ops.amp_passes;

        let single = Engine::new(EngineConfig::default().parallelism(2))
            .run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(seed));
        assert_eq!(&single.counts, &serial.counts, "single-node w={}", window);
        assert_eq!(&single.ops, &serial.ops, "single-node ops w={}", window);

        let cluster = Engine::with_backend(
            EngineConfig::default().parallelism(2),
            ClusterBackend::new(4, InterconnectModel::commodity_cluster()),
        )
        .run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(seed));
        assert_eq!(
            &cluster.counts, &serial.counts,
            "4-node cluster w={}",
            window
        );
        assert_eq!(&cluster.ops, &serial.ops, "4-node cluster ops w={}", window);

        let sharded = Engine::with_backend(EngineConfig::default().parallelism(2), shard.clone())
            .run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(seed));
        assert_eq!(&sharded.counts, &serial.counts, "2-shard w={}", window);
        assert_eq!(&sharded.ops, &serial.ops, "2-shard ops w={}", window);
    }
    // Boundary fusion rides windows on copies/samples. Under the ideal
    // model the head hoist is exactly a flush-boundary split — the
    // dynamic fuser resumes in the same state eager would have reached —
    // so at equal width boundary can never cost more passes. Under
    // stochastic noise a fired Kraus branch force-flushes the fuser, and
    // removing the head frame shifts what is pending at that barrier:
    // the realignment usually saves a few passes but may cost a few, so
    // no per-width ordering holds there (the bench's ≥ 1.3× gate on the
    // wide boundary cells is the perf invariant for noisy runs).
    if ideal {
        for pair in eager_passes.chunks(2) {
            assert!(
                pair[1] <= pair[0],
                "boundary fusion increased passes under ideal noise: {} vs {}",
                pair[1],
                pair[0]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn grid_counts_bit_identical_across_backends(
        circuit in arb_circuit(8, 14),
        noise_idx in 0usize..2,
        seed in 0u64..1000,
    ) {
        let shard = ShardBackend::spawn(2).expect("spawn workers");
        check_grid(&circuit, &noise_for(noise_idx), noise_idx == 0, seed, &shard);
    }
}

/// Deterministic anchors: QFT (dense + diagonal structure) and a random
/// QAOA instance (diag-run heavy with a dense mixer tail — the shape that
/// exercises tail windows hardest), across the full grid, both noises.
#[test]
fn qft_and_qaoa_anchor_full_grid() {
    let shard = ShardBackend::spawn(2).expect("spawn workers");
    let qaoa = generators::qaoa_random(8, 16, 1, 0.4, 0.8).0;
    for circuit in [generators::qft(8), qaoa] {
        for noise_idx in 0..2 {
            check_grid(&circuit, &noise_for(noise_idx), noise_idx == 0, 11, &shard);
        }
    }
}
