//! Property tests of the **pooled engine on the distributed backend**: the
//! work-stealing tree executor running `DistributedStateVector` nodes
//! (via `Engine::with_backend` + `ClusterBackend`) must yield `Counts`
//! bit-identical to the serial single-node engine run for the same seed —
//! at 2/4/8 nodes × parallelism 1..4, ideal and sycamore noise, single and
//! oversampled leaves — because node RNG streams derive only from the job
//! seed and tree path, and plan replay is arithmetic-identical on every
//! backend. Also checks the pool-counter high-water mark against the
//! schedule's bound on each backend.

use proptest::prelude::*;
use std::sync::Arc;
use tqsim::Strategy as PlanStrategy;
use tqsim_circuit::{Circuit, Gate, GateKind};
use tqsim_cluster::{ClusterBackend, InterconnectModel};
use tqsim_engine::{Engine, EngineConfig, JobPlan, PlannedJob};
use tqsim_noise::NoiseModel;

/// Random gates over 7 qubits — wide enough that 8-node slicing (3 global
/// qubits) exercises the remap fallback alongside node-local fused kernels.
fn arb_gate(n: u16) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let angle = -6.3f64..6.3;
    prop_oneof![
        (q.clone(), 0usize..8).prop_map(move |(q, k)| {
            let kind = [
                GateKind::X,
                GateKind::Y,
                GateKind::Z,
                GateKind::H,
                GateKind::S,
                GateKind::T,
                GateKind::Sx,
                GateKind::Sw,
            ][k];
            Gate::new(kind, &[q])
        }),
        (q.clone(), angle.clone(), 0usize..4).prop_map(move |(q, t, k)| {
            let kind = [
                GateKind::Rx(t),
                GateKind::Rz(t),
                GateKind::Phase(t),
                GateKind::Ry(t),
            ][k];
            Gate::new(kind, &[q])
        }),
        (q.clone(), q, angle, 0usize..5).prop_filter_map("distinct qubits", move |(a, b, t, k)| {
            if a == b {
                return None;
            }
            let kind = [
                GateKind::Cx,
                GateKind::Cz,
                GateKind::CPhase(t),
                GateKind::Swap,
                GateKind::Rzz(t),
            ][k];
            Some(Gate::new(kind, &[a, b]))
        }),
    ]
}

fn arb_circuit(n: u16, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(n), 2..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(*g.kind(), g.qubits());
        }
        c
    })
}

fn noise_for(idx: usize) -> NoiseModel {
    if idx == 0 {
        NoiseModel::ideal()
    } else {
        NoiseModel::sycamore()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pooled_cluster_engine_is_bit_identical_to_serial_single_node(
        circuit in arb_circuit(7, 20),
        noise_idx in 0usize..2,
        seed in 0u64..1000,
    ) {
        let noise = noise_for(noise_idx);
        let arities = vec![3u64, 2];
        let k = arities.len();
        let plan = Arc::new(
            JobPlan::plan(&circuit, &noise, 6, &PlanStrategy::Custom { arities }).unwrap(),
        );
        // The serial reference: the engine at parallelism 1 on the default
        // single-node backend.
        let reference = Engine::new(EngineConfig::default().parallelism(1))
            .run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(seed));
        let model = InterconnectModel::commodity_cluster();
        for nodes in [2usize, 4, 8] {
            for workers in 1usize..=4 {
                let engine = Engine::with_backend(
                    EngineConfig::default().parallelism(workers),
                    ClusterBackend::new(nodes, model),
                );
                let r = engine.run_planned(&PlannedJob::new(Arc::clone(&plan)).seed(seed));
                prop_assert_eq!(
                    &r.counts, &reference.counts,
                    "{} nodes, {} workers", nodes, workers
                );
                prop_assert_eq!(&r.ops, &reference.ops, "{} nodes, {} workers", nodes, workers);
                // The schedule's memory bound holds on the distributed
                // backend exactly as on the single-node one: each worker
                // can have one chain pinned by thieves plus one active
                // chain, each at most (k + 1) buffers deep.
                let stats = engine.pool_stats();
                prop_assert!(
                    stats.high_water <= 2 * workers * (k + 1),
                    "{} nodes, {} workers: high water {} exceeds bound {}",
                    nodes, workers, stats.high_water, 2 * workers * (k + 1)
                );
                prop_assert_eq!(stats.outstanding, 0, "all buffers returned");
            }
        }
    }

    #[test]
    fn oversampled_cluster_engine_leaves_stay_deterministic(
        circuit in arb_circuit(7, 14),
        seed in 0u64..1000,
        leaf_samples in 2u32..4,
    ) {
        // leaf_samples > 1 exercises the batched sorted-CDF walk
        // (`DistributedStateVector::sample_many`) inside the pooled
        // executor; the draws must match the single-node walk draw for
        // draw at any parallelism.
        let noise = NoiseModel::sycamore();
        let plan = Arc::new(
            JobPlan::plan(&circuit, &noise, 6, &PlanStrategy::Custom { arities: vec![3, 2] })
                .unwrap(),
        );
        let reference = Engine::new(EngineConfig::default().parallelism(1)).run_planned(
            &PlannedJob::new(Arc::clone(&plan)).seed(seed).leaf_samples(leaf_samples),
        );
        let model = InterconnectModel::commodity_cluster();
        let engine = Engine::with_backend(
            EngineConfig::default().parallelism(3),
            ClusterBackend::new(4, model),
        );
        let r = engine.run_planned(
            &PlannedJob::new(Arc::clone(&plan)).seed(seed).leaf_samples(leaf_samples),
        );
        prop_assert_eq!(&r.counts, &reference.counts);
        prop_assert_eq!(r.ops.samples, reference.ops.samples);
    }
}
