//! Cross-crate speedup integration tests: the computational-reuse math must
//! hold end to end (Fig. 11 / Table 3 shape at test scale).

use tqsim::{speedup, DcpConfig, Strategy, Tqsim};
use tqsim_baselines::run_baseline;
use tqsim_circuit::generators::{self, table2_suite_capped};
use tqsim_noise::NoiseModel;

#[test]
fn dcp_reduces_gate_work_on_every_suitable_suite_circuit() {
    let noise = NoiseModel::sycamore();
    let shots = 2_000u64;
    let cfg = DcpConfig {
        margin: 0.1,
        copy_cost: 10.0,
        ..DcpConfig::default()
    };
    let mut improved = 0usize;
    let mut total = 0usize;
    for bench in table2_suite_capped(10) {
        let base = Tqsim::new(&bench.circuit)
            .noise(noise.clone())
            .shots(shots)
            .strategy(Strategy::Baseline)
            .seed(1)
            .run()
            .unwrap();
        let tree = Tqsim::new(&bench.circuit)
            .noise(noise.clone())
            .shots(shots)
            .strategy(Strategy::Dynamic(cfg))
            .seed(2)
            .run()
            .unwrap();
        total += 1;
        // Gate work must never increase, and must strictly decrease whenever
        // DCP actually partitioned.
        assert!(
            tree.ops.total_gates() <= base.ops.total_gates(),
            "{}: tqsim did more gate work",
            bench.name
        );
        if tree.tree.depth() > 1 {
            assert!(
                tree.ops.total_gates() < base.ops.total_gates(),
                "{}",
                bench.name
            );
            improved += 1;
        }
    }
    assert!(
        improved * 2 > total,
        "DCP should partition most circuits: {improved}/{total}"
    );
}

#[test]
fn measured_speedup_tracks_predicted_speedup() {
    let circuit = generators::qft(12);
    let noise = NoiseModel::sycamore();
    let shots = 2_000u64;
    let strategy = Strategy::Custom {
        arities: vec![250, 2, 2, 2],
    };
    let plan = strategy.plan(&circuit, &noise, shots).unwrap();

    let base = Tqsim::new(&circuit)
        .noise(noise.clone())
        .shots(shots)
        .strategy(Strategy::Baseline)
        .seed(3)
        .run()
        .unwrap();
    let tree = Tqsim::new(&circuit)
        .noise(noise.clone())
        .shots(shots)
        .strategy(strategy)
        .seed(4)
        .run()
        .unwrap();

    let measured = base.wall_time.as_secs_f64() / tree.wall_time.as_secs_f64();
    let predicted = speedup::predicted_speedup(&plan, shots, 5.0);
    assert!(measured > 1.2, "no speedup measured: {measured:.2}");
    assert!(
        (measured / predicted - 1.0).abs() < 0.6,
        "measured {measured:.2} vs predicted {predicted:.2} diverge wildly"
    );
}

#[test]
fn tree_executor_baseline_agrees_with_independent_flat_runner() {
    // Two separate implementations of the same semantics (tqsim's (N) tree
    // vs tqsim-baselines' flat loop) must count the same operations.
    let circuit = generators::qft(8);
    let noise = NoiseModel::sycamore();
    let shots = 300u64;
    let tree = Tqsim::new(&circuit)
        .noise(noise.clone())
        .shots(shots)
        .strategy(Strategy::Baseline)
        .seed(7)
        .run()
        .unwrap();
    let flat = run_baseline(&circuit, &noise, shots, 7);
    assert_eq!(tree.ops.total_gates(), flat.ops.total_gates());
    assert_eq!(tree.counts.total(), flat.counts.total());
    // Both draw one sample per shot.
    assert_eq!(tree.ops.samples, flat.ops.samples);
}

#[test]
fn speedup_grows_with_circuit_length() {
    // The paper's core scaling claim: longer circuits admit more
    // subcircuits and larger reuse wins (QFT column of Fig. 11).
    let noise = NoiseModel::sycamore();
    let shots = 2_000u64;
    let cfg = DcpConfig {
        margin: 0.1,
        copy_cost: 10.0,
        ..DcpConfig::default()
    };
    let mut last = 0.0;
    for n in [8u16, 10, 12] {
        let circuit = generators::qft(n);
        let plan = Strategy::Dynamic(cfg)
            .plan(&circuit, &noise, shots)
            .unwrap();
        let predicted = speedup::predicted_speedup(&plan, shots, cfg.copy_cost);
        assert!(
            predicted >= last * 0.9,
            "qft_{n}: predicted speedup {predicted:.2} fell below qft_{}'s {last:.2}",
            n - 2
        );
        last = predicted;
    }
    assert!(
        last > 1.5,
        "qft_12 should predict a solid speedup, got {last:.2}"
    );
}
