//! Determinism and reproducibility: every engine must be a pure function of
//! its seed, and the generated suite must be stable run to run.

use tqsim::{Strategy, Tqsim};
use tqsim_baselines::{analyze_redundancy, run_baseline};
use tqsim_circuit::generators::{self, table2_suite};
use tqsim_cluster::{run_distributed, InterconnectModel};
use tqsim_noise::{fig16_models, NoiseModel};

#[test]
fn suite_generation_is_reproducible() {
    let a = table2_suite();
    let b = table2_suite();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.circuit.gates(), y.circuit.gates(), "{}", x.name);
    }
}

#[test]
fn every_engine_is_seed_deterministic() {
    let circuit = generators::qsc(8, 38, 2);
    let noise = NoiseModel::sycamore();

    let t1 = Tqsim::new(&circuit)
        .noise(noise.clone())
        .shots(200)
        .seed(9)
        .run()
        .unwrap();
    let t2 = Tqsim::new(&circuit)
        .noise(noise.clone())
        .shots(200)
        .seed(9)
        .run()
        .unwrap();
    assert_eq!(t1.counts, t2.counts);
    assert_eq!(t1.ops, t2.ops);

    let b1 = run_baseline(&circuit, &noise, 200, 9);
    let b2 = run_baseline(&circuit, &noise, 200, 9);
    assert_eq!(b1.counts, b2.counts);

    let model = InterconnectModel::commodity_cluster();
    let p = Strategy::Custom {
        arities: vec![20, 10],
    }
    .plan(&circuit, &noise, 200)
    .unwrap();
    let d1 = run_distributed(&circuit, &noise, &p, 4, model, 9).unwrap();
    let d2 = run_distributed(&circuit, &noise, &p, 4, model, 9).unwrap();
    assert_eq!(d1.counts, d2.counts);

    let r1 = analyze_redundancy(&circuit, &noise, 500, 9).unwrap();
    let r2 = analyze_redundancy(&circuit, &noise, 500, 9).unwrap();
    assert_eq!(r1, r2);
}

#[test]
fn different_seeds_decorrelate() {
    let circuit = generators::qft(8);
    let noise = NoiseModel::sycamore();
    let a = Tqsim::new(&circuit)
        .noise(noise.clone())
        .shots(500)
        .seed(1)
        .run()
        .unwrap();
    let b = Tqsim::new(&circuit)
        .noise(noise.clone())
        .shots(500)
        .seed(2)
        .run()
        .unwrap();
    assert_ne!(a.counts, b.counts, "independent seeds should differ");
}

#[test]
fn noise_models_are_deterministically_constructed() {
    let a = fig16_models();
    let b = fig16_models();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x, y);
    }
}

#[test]
fn plan_is_a_pure_function_of_inputs() {
    let circuit = generators::qft(12);
    let noise = NoiseModel::sycamore();
    let p1 = Strategy::default_dcp()
        .plan(&circuit, &noise, 4_000)
        .unwrap();
    let p2 = Strategy::default_dcp()
        .plan(&circuit, &noise, 4_000)
        .unwrap();
    assert_eq!(p1, p2);
    // And sensitive to its inputs.
    let p3 = Strategy::default_dcp()
        .plan(&circuit, &noise, 8_000)
        .unwrap();
    assert_ne!(
        p1.tree, p3.tree,
        "different shot budgets should plan differently"
    );
}
